//! Fault-campaign driver: coverage-vs-outcome sweeps and the
//! deterministic smoke campaign `scripts/verify.sh` asserts on.
//!
//! ```text
//! fault_campaign                  # coverage sweep on the built-in kernel
//! fault_campaign --workload LUD   # sweep a suite workload
//! fault_campaign --runs 400       # more seeds per coverage point
//! fault_campaign --fork-points 0  # disable fork-point acceleration
//! fault_campaign smoke            # pinned-histogram + resume smoke test
//! fault_campaign fork-smoke       # fork on/off histogram equality check
//! fault_campaign bench-fork       # late-strike speedup -> BENCH_pr6.json
//! fault_campaign --shards 4 --kill-after 2
//!                                 # crash drill: SIGKILL + abort shard
//!                                 # workers mid-campaign, resume, diff
//!                                 # the merged histogram vs serial
//! fault_campaign shard-worker --dir D --shards N --worker-id ID
//!                                 # one lease-claiming shard worker
//!                                 # process (spawned by the drill)
//! ```
//!
//! The sweep bombards one workload at several sensor-coverage levels and
//! prints the outcome taxonomy per level with Wilson 95% intervals — the
//! coverage-vs-SDC-rate curve. The smoke mode runs a small campaign
//! three ways (in memory, journaled, and resumed from a truncated
//! journal), asserts all three render byte-identically, and pins the
//! outcome histogram; any mismatch exits nonzero.
//!
//! Fault runs fork from clean-prefix checkpoints by default (the runner
//! snapshots the fault-free baseline at a grid of fork-point cycles and
//! each seed resumes from the last checkpoint before its first strike);
//! `--fork-points 0` or the `FLAME_NO_FORK` environment variable fall
//! back to scratch simulation. Outcomes are bit-identical either way —
//! `fork-smoke` asserts exactly that.

use flame_core::experiment::{run_scheme, ExperimentConfig, ProtocolConfig, WorkloadSpec};
use flame_core::runner::{
    run_campaign_runner, CampaignSpec, CampaignSummary, RetryPolicy, SelfFault,
};
use flame_core::scheme::Scheme;
use flame_core::shard::{merge_shards, run_shard_worker, run_sharded_campaign, ShardOptions};
use flame_core::Outcome;
use gpu_sim::builder::KernelBuilder;
use gpu_sim::isa::{MemSpace, Special};
use gpu_sim::sm::LaunchDims;
use std::sync::Arc;

/// A small arithmetic kernel (64 CTAs x 128 threads) whose output check
/// is bit-exact: any undetected in-flight corruption that reaches the
/// store shows up as SDC.
fn smoke_workload() -> WorkloadSpec {
    let mut b = KernelBuilder::new("smoke");
    let tid = b.special(Special::TidX);
    let cta = b.special(Special::CtaIdX);
    let ntid = b.special(Special::NTidX);
    let gid = b.imad(cta, ntid, tid);
    let a = b.imul(gid, 8);
    let v = b.ld_arr(MemSpace::Global, 0, a, 0);
    let mut acc = v;
    for i in 0..12 {
        acc = b.iadd(acc, i);
    }
    b.st_arr(MemSpace::Global, 0, a, acc, 0);
    b.exit();
    WorkloadSpec {
        name: "smoke",
        abbr: "SMOKE",
        suite: "campaign",
        kernel: b.finish(),
        dims: LaunchDims::linear(64, 128),
        init: Arc::new(|m| {
            for i in 0..8192u64 {
                m.write(i * 8, i);
            }
        }),
        check: Arc::new(|m| (0..8192u64).all(|i| m.read(i * 8) == i + 66)),
    }
}

/// Fork points checkpointed across the strike window unless overridden
/// with `--fork-points`.
const DEFAULT_FORK_POINTS: usize = 8;

fn spec_for(cfg: &ExperimentConfig, horizon: u64, coverage: f64, runs: usize) -> CampaignSpec {
    CampaignSpec {
        base_seed: 0x5EED,
        runs,
        strikes_per_run: 3,
        horizon,
        strike_window: (0.0, 1.0),
        fork_points: DEFAULT_FORK_POINTS,
        coverage,
        control_fraction: 0.15,
        recovery_fraction: 0.10,
        scheme: Scheme::SensorRenaming,
        cfg: cfg.clone(),
        proto: ProtocolConfig::default(),
        watchdog: 0,
        retry: RetryPolicy::default(),
        self_fault: SelfFault::default(),
    }
}

fn sweep(w: &WorkloadSpec, runs: usize, fork_points: usize) {
    let cfg = ExperimentConfig {
        max_cycles: 20_000_000,
        ..ExperimentConfig::default()
    };
    let clean = run_scheme(w, Scheme::SensorRenaming, &cfg).expect("clean run failed");
    let horizon = clean.stats.cycles * 3 / 4;
    println!(
        "Fault campaign — {} ({} runs x 3 strikes per coverage level, horizon {} cycles)\n",
        w.name, runs, horizon
    );
    println!(
        "{:>8}  {:>6} {:>9} {:>5} {:>4} {:>5}   {:<30}",
        "coverage", "masked", "recovered", "sdc", "due", "hang", "sdc rate [95% CI]"
    );
    for &coverage in &[1.0, 0.95, 0.85, 0.70, 0.50] {
        let spec = CampaignSpec {
            fork_points,
            ..spec_for(&cfg, horizon, coverage, runs)
        };
        let s = run_campaign_runner(w, &spec, None).expect("campaign failed");
        let k = s.count(Outcome::Sdc);
        let (lo, hi) = flame_core::wilson_interval(k, s.records.len(), 1.96);
        println!(
            "{:>8.2}  {:>6} {:>9} {:>5} {:>4} {:>5}   {:.4} [{:.4}, {:.4}]",
            coverage,
            s.count(Outcome::Masked),
            s.count(Outcome::DetectedRecovered),
            k,
            s.count(Outcome::Due),
            s.count(Outcome::Hang),
            s.rate(Outcome::Sdc),
            lo,
            hi
        );
    }
    println!(
        "\npipeline strikes are always recoverable at full coverage; coverage gaps\n\
         and control-flow/recovery-hardware hits are what convert strikes to SDCs."
    );
}

const SMOKE_RUNS: usize = 24;
const SMOKE_COVERAGE: f64 = 0.625;

/// The report the smoke campaign must reproduce byte-for-byte. The
/// campaign is deterministic; any drift means the fault model, the
/// protocol, or the runner changed behaviour. Legitimate changes
/// regenerate the golden with `FLAME_UPDATE_GOLDEN=1 fault_campaign
/// smoke` and commit the diff for review.
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/fault_smoke_golden.txt"
);

fn fail(msg: &str) -> ! {
    eprintln!("SMOKE FAILED: {msg}");
    std::process::exit(1);
}

fn check_same(label: &str, a: &CampaignSummary, b: &CampaignSummary) {
    if a.records != b.records || a.render() != b.render() {
        eprintln!(
            "--- expected ---\n{}\n--- got ---\n{}",
            a.render(),
            b.render()
        );
        fail(label);
    }
}

fn smoke() {
    let w = smoke_workload();
    let cfg = ExperimentConfig {
        max_cycles: 20_000_000,
        ..ExperimentConfig::default()
    };
    let clean = run_scheme(&w, Scheme::SensorRenaming, &cfg).expect("clean run failed");
    let spec = spec_for(&cfg, clean.stats.cycles * 3 / 4, SMOKE_COVERAGE, SMOKE_RUNS);

    // 1. In-memory reference run, pinned against the committed golden
    //    report (or regenerating it when FLAME_UPDATE_GOLDEN=1).
    let reference = run_campaign_runner(&w, &spec, None).expect("reference campaign failed");
    println!("{}", reference.render());
    if std::env::var("FLAME_UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(GOLDEN_PATH, reference.render())
            .unwrap_or_else(|e| fail(&format!("cannot write golden {GOLDEN_PATH}: {e}")));
        println!("golden report regenerated at {GOLDEN_PATH}");
    } else {
        let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
            fail(&format!(
                "cannot read golden {GOLDEN_PATH}: {e}\n\
                 (regenerate with FLAME_UPDATE_GOLDEN=1 fault_campaign smoke)"
            ))
        });
        if reference.render() != golden {
            eprintln!(
                "--- golden ({GOLDEN_PATH}) ---\n{golden}\n--- got ---\n{}",
                reference.render()
            );
            fail(
                "smoke report drifted from the golden file \
                 (if intentional: FLAME_UPDATE_GOLDEN=1 fault_campaign smoke)",
            );
        }
    }

    // 2. Journaled run: same summary, journal fully populated.
    let path = std::env::temp_dir().join(format!("flame_fault_smoke_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journaled = run_campaign_runner(&w, &spec, Some(&path)).expect("journaled campaign failed");
    check_same(
        "journaled run diverged from in-memory run",
        &reference,
        &journaled,
    );

    // 3. Kill simulation: keep the header, 9 complete records and a
    //    half-written tail line, then resume. The resumed summary must be
    //    byte-identical and must have re-run exactly the missing seeds
    //    (including the truncated one).
    let text = std::fs::read_to_string(&path).expect("journal unreadable");
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() != 1 + SMOKE_RUNS {
        fail(&format!(
            "journal has {} lines, expected {}",
            lines.len(),
            1 + SMOKE_RUNS
        ));
    }
    let mut truncated: String = lines[..10].join("\n");
    truncated.push('\n');
    truncated.push_str(&lines[10][..lines[10].len() / 2]);
    std::fs::write(&path, truncated).expect("journal truncation failed");
    let resumed = run_campaign_runner(&w, &spec, Some(&path)).expect("resumed campaign failed");
    if resumed.ran_now != SMOKE_RUNS - 9 {
        fail(&format!(
            "resume re-ran {} seeds, expected {}",
            resumed.ran_now,
            SMOKE_RUNS - 9
        ));
    }
    check_same(
        "resumed run diverged from in-memory run",
        &reference,
        &resumed,
    );

    // 4. Second resume over the repaired journal: the truncated tail
    //    must have been newline-terminated on disk, or the record
    //    appended after it merges into a parseable hybrid line whose
    //    seed dedups the correct re-run away. Nothing should re-run and
    //    the report must still match.
    let again = run_campaign_runner(&w, &spec, Some(&path)).expect("second resume failed");
    if again.ran_now != 0 {
        fail(&format!(
            "second resume re-ran {} seeds, expected 0",
            again.ran_now
        ));
    }
    check_same("journal poisoned by the truncated tail", &reference, &again);
    let _ = std::fs::remove_file(&path);

    // 5. Fork determinism: the same campaign with forking disabled must
    //    produce the same outcomes — only the telemetry fields differ.
    let scratch = run_campaign_runner(
        &w,
        &CampaignSpec {
            fork_points: 0,
            ..spec.clone()
        },
        None,
    )
    .expect("fork-off campaign failed");
    check_same_outcomes("fork-on and fork-off runs diverged", &reference, &scratch);

    println!(
        "smoke ok: histogram {:?}, resume re-ran {} seeds",
        reference.counts, resumed.ran_now
    );
}

/// Asserts two summaries agree on everything a fault campaign *means* —
/// outcome histogram and every per-seed counter — ignoring only the fork
/// telemetry fields (`fork_cycle`/`sim_cycles`/`fork_hit`), which are
/// cost accounting and legitimately differ between a forked run and a
/// scratch run of the same seed.
fn check_same_outcomes(label: &str, a: &CampaignSummary, b: &CampaignSummary) {
    let strip = |s: &CampaignSummary| -> Vec<flame_core::runner::RunRecord> {
        s.records
            .iter()
            .map(|r| flame_core::runner::RunRecord {
                fork_cycle: 0,
                sim_cycles: 0,
                fork_hit: false,
                ..*r
            })
            .collect()
    };
    if a.counts != b.counts || strip(a) != strip(b) || a.clean_cycles != b.clean_cycles {
        eprintln!(
            "--- fork on ---\n{}\n--- fork off ---\n{}",
            a.render(),
            b.render()
        );
        fail(label);
    }
}

/// Runs a small late-strike campaign twice — fork-point acceleration on
/// and off — and asserts the outcome histograms and per-seed records are
/// identical modulo telemetry. `scripts/verify.sh` runs this as the
/// fork regression gate; on failure it dumps both journals for diffing.
fn fork_smoke() {
    let w = smoke_workload();
    let cfg = ExperimentConfig {
        max_cycles: 20_000_000,
        ..ExperimentConfig::default()
    };
    let clean = run_scheme(&w, Scheme::SensorRenaming, &cfg).expect("clean run failed");
    let spec = CampaignSpec {
        strike_window: (0.5, 1.0),
        ..spec_for(&cfg, clean.stats.cycles, SMOKE_COVERAGE, SMOKE_RUNS)
    };
    let forked = run_campaign_runner(&w, &spec, None).expect("forked campaign failed");
    let scratch = run_campaign_runner(
        &w,
        &CampaignSpec {
            fork_points: 0,
            ..spec.clone()
        },
        None,
    )
    .expect("scratch campaign failed");
    // Journals go to disk before the equality checks so CI can upload
    // them as artifacts when a check aborts the process; removed on
    // success so artifacts exist exactly when the gate failed.
    dump_divergence(&forked, &scratch);
    if forked.counts != scratch.counts {
        fail("fork on/off outcome histograms differ");
    }
    check_same_outcomes("fork on/off records differ", &forked, &scratch);
    let hits = forked.records.iter().filter(|r| r.fork_hit).count();
    if hits == 0 {
        fail("no run forked — checkpoint grid never hit");
    }
    let _ = std::fs::remove_dir_all(DIVERGENCE_DIR);
    println!(
        "fork-smoke ok: histogram {:?}, {hits}/{} runs forked",
        forked.counts,
        forked.records.len()
    );
}

/// Directory fork-smoke writes both campaigns' journals to; CI uploads
/// it as an artifact on failure so the diverging seed is diffable offline.
const DIVERGENCE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/fork-smoke");

fn dump_divergence(forked: &CampaignSummary, scratch: &CampaignSummary) {
    let dir = std::path::Path::new(DIVERGENCE_DIR);
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    for (name, s) in [("forked", forked), ("scratch", scratch)] {
        let path = dir.join(format!("flame_fork_divergence_{name}.jsonl"));
        let mut text = String::new();
        text.push_str(&s.header);
        text.push('\n');
        for r in &s.records {
            text.push_str(&r.to_line());
            text.push('\n');
        }
        let _ = std::fs::write(&path, text);
    }
}

/// Path the late-strike fork benchmark writes its report to.
const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");

/// Times a late-strike campaign (every strike in the last 20% of the
/// horizon — the regime fork-point acceleration targets) with forking
/// on and off, asserts bit-identical outcomes, and writes the speedup
/// report to `BENCH_pr6.json`.
fn bench_fork(runs: usize) {
    // BP is the longest-running catalog workload (~100k clean cycles), so
    // simulated-prefix savings dominate per-run fixed costs (GPU image
    // allocation, kernel prepare) and the measurement reflects the fork
    // machinery rather than constant overheads.
    let w = flame_bench::workload_by_abbr("BP").expect("BP missing from catalog");
    let cfg = ExperimentConfig {
        max_cycles: 20_000_000,
        ..ExperimentConfig::default()
    };
    let clean = run_scheme(&w, Scheme::SensorRenaming, &cfg).expect("clean run failed");
    let spec = CampaignSpec {
        strike_window: (0.8, 1.0),
        ..spec_for(&cfg, clean.stats.cycles, SMOKE_COVERAGE, runs)
    };
    println!(
        "bench-fork: {} runs, horizon {} cycles, strikes in [0.8, 1.0) of horizon",
        runs, spec.horizon
    );

    let t0 = std::time::Instant::now();
    let forked = run_campaign_runner(&w, &spec, None).expect("forked campaign failed");
    let fork_secs = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let scratch = run_campaign_runner(
        &w,
        &CampaignSpec {
            fork_points: 0,
            ..spec.clone()
        },
        None,
    )
    .expect("scratch campaign failed");
    let scratch_secs = t0.elapsed().as_secs_f64();

    check_same_outcomes("bench-fork runs diverged", &forked, &scratch);
    let hits = forked.records.iter().filter(|r| r.fork_hit).count();
    let saved: u64 = forked.records.iter().map(|r| r.fork_cycle).sum();
    let fork_sim: u64 = forked.records.iter().map(|r| r.sim_cycles).sum();
    let scratch_sim: u64 = scratch.records.iter().map(|r| r.sim_cycles).sum();
    let speedup = scratch_secs / fork_secs.max(1e-9);
    let json = format!(
        "{{\n  \"workload\": \"{}\",\n  \"runs\": {},\n  \"strikes_per_run\": {},\n  \
         \"horizon_cycles\": {},\n  \"strike_window\": [0.8, 1.0],\n  \"fork_points\": {},\n  \
         \"forked_runs\": {},\n  \"prefix_cycles_saved\": {},\n  \
         \"forked_cycles_simulated\": {},\n  \"scratch_cycles_simulated\": {},\n  \
         \"forked_wall_secs\": {:.3},\n  \"scratch_wall_secs\": {:.3},\n  \
         \"speedup\": {:.3},\n  \"bit_identical\": true\n}}\n",
        w.name,
        runs,
        spec.strikes_per_run,
        spec.horizon,
        spec.fork_points,
        hits,
        saved,
        fork_sim,
        scratch_sim,
        fork_secs,
        scratch_secs,
        speedup
    );
    std::fs::write(BENCH_PATH, &json)
        .unwrap_or_else(|e| fail(&format!("cannot write {BENCH_PATH}: {e}")));
    println!("{json}");
    println!(
        "bench-fork ok: {speedup:.2}x wall-clock, {hits}/{runs} runs forked, report at {BENCH_PATH}"
    );
}

/// Directory the crash drill stages its shard journals, leases, and
/// (on failure) divergence reports in; CI uploads it as an artifact
/// when the gate fails.
const DRILL_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/crash-drill");

/// The spec every drill participant (serial reference, worker
/// processes, resuming supervisor) independently reconstructs. The
/// clean-run horizon and the `FLAME_POISON_SEEDS`/`FLAME_FLAKY_SEEDS`
/// environment are deterministic inputs, so all processes agree on the
/// spec — and therefore on the journal fingerprint.
fn drill_spec(w: &WorkloadSpec) -> CampaignSpec {
    let cfg = ExperimentConfig {
        max_cycles: 20_000_000,
        ..ExperimentConfig::default()
    };
    let clean = run_scheme(w, Scheme::SensorRenaming, &cfg).expect("clean run failed");
    CampaignSpec {
        self_fault: SelfFault::from_env(),
        ..spec_for(&cfg, clean.stats.cycles * 3 / 4, SMOKE_COVERAGE, SMOKE_RUNS)
    }
}

/// Silences the default panic hook for the panics the drill *injects*
/// (`self-fault injection: ...`), which are caught by the runner and
/// would otherwise spray backtraces over the drill output. Genuine
/// panics keep the default hook behaviour.
fn install_quiet_self_fault_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains("self-fault injection"));
        if !injected {
            default(info);
        }
    }));
}

/// Entry point for one lease-claiming shard-worker **process** — what
/// the crash drill spawns (and kills). Runs the worker loop until the
/// whole campaign is complete, honouring `FLAME_SHARD_CRASH_AFTER` (a
/// drill knob that hard-aborts the process after that many seeds, like
/// a `kill -9` it cannot see coming).
fn shard_worker_main(dir: &std::path::Path, shards: usize, worker_id: &str, ttl_ms: u64) {
    install_quiet_self_fault_hook();
    let w = smoke_workload();
    let spec = drill_spec(&w);
    let ttl = std::time::Duration::from_millis(ttl_ms.max(1));
    // SIGTERM/SIGINT drain this worker gracefully: it finishes the seed
    // in flight, journals it, releases its lease, and exits — the
    // campaign resumes from the journals with nothing lost.
    let shutdown = flame_serve::shutdown::install();
    let opts = ShardOptions {
        worker_id: worker_id.to_string(),
        lease_ttl: ttl,
        heartbeat: ttl / 4,
        crash_after: std::env::var("FLAME_SHARD_CRASH_AFTER")
            .ok()
            .and_then(|v| v.parse().ok()),
        shutdown: Some(shutdown),
        ..ShardOptions::new(shards)
    };
    match run_shard_worker(&w, &spec, dir, &opts) {
        Ok(rep) => println!(
            "shard-worker {worker_id}: claimed {} shards, ran {} seeds, lost {} leases{}",
            rep.shards_claimed,
            rep.seeds_run,
            rep.leases_lost,
            if rep.stopped {
                ", stopped by shutdown signal"
            } else {
                ""
            }
        ),
        Err(e) => fail(&format!("shard-worker {worker_id}: {e}")),
    }
}

/// The crash-injection drill `scripts/verify.sh` gates on: runs the
/// smoke campaign sharded across real worker **processes**, kills two
/// of them mid-campaign two different ways — one `SIGKILL`ed by the
/// parent, one hard-aborting itself after `kill_after` seeds — lets
/// the survivors reclaim the orphaned leases, resumes/merges, and
/// asserts the merged report is byte-identical to a single-process
/// serial run of the same spec. One seed is poisoned throughout
/// (`FLAME_POISON_SEEDS`), so the drill also proves a
/// repeatedly-panicking seed is quarantined as `Due` on both paths
/// instead of stalling its shard.
fn crash_drill(shards: usize, kill_after: usize, ttl_ms: u64) {
    install_quiet_self_fault_hook();
    let dir = std::path::Path::new(DRILL_DIR);
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {DRILL_DIR}: {e}")));

    // Poison one mid-campaign seed for every participant: the drill
    // proves quarantine keeps sharded and serial runs bit-identical.
    let poison_seed = 0x5EED + 5;
    std::env::set_var("FLAME_POISON_SEEDS", poison_seed.to_string());

    let w = smoke_workload();
    let spec = drill_spec(&w);
    println!(
        "crash-drill: {SMOKE_RUNS} seeds over {shards} shards, ttl {ttl_ms} ms, \
         abort worker after {kill_after} seeds, SIGKILL one worker, poison seed {poison_seed}"
    );

    // Serial reference in this process — the golden the merged sharded
    // report must match byte for byte.
    let reference = run_campaign_runner(&w, &spec, None).expect("serial reference failed");

    // One worker process per shard. Worker 0 aborts itself after
    // `kill_after` seeds (deterministic mid-shard death); worker 1 is
    // SIGKILLed by us shortly after launch (asynchronous death).
    let exe = std::env::current_exe().expect("current_exe");
    let spawn = |i: usize, crash_after: Option<usize>| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args([
            "shard-worker",
            "--dir",
            DRILL_DIR,
            "--shards",
            &shards.to_string(),
            "--ttl-ms",
            &ttl_ms.to_string(),
            "--worker-id",
            &format!("drill-w{i}"),
        ]);
        if let Some(n) = crash_after {
            cmd.env("FLAME_SHARD_CRASH_AFTER", n.to_string());
        }
        cmd.spawn()
            .unwrap_or_else(|e| fail(&format!("cannot spawn shard worker: {e}")))
    };
    let mut children: Vec<std::process::Child> = (0..shards)
        .map(|i| spawn(i, (i == 0).then_some(kill_after)))
        .collect();

    // Give worker 1 time to claim a shard and start simulating, then
    // SIGKILL it — no unwinding, no lease release, journal cut at the
    // last fsynced line.
    if children.len() > 1 {
        std::thread::sleep(std::time::Duration::from_millis(400));
        let _ = children[1].kill();
    }
    let mut died = 0;
    for (i, c) in children.iter_mut().enumerate() {
        let status = c.wait().expect("wait on shard worker");
        if !status.success() {
            died += 1;
        }
        println!("crash-drill: worker {i} exited with {status}");
    }
    if died == 0 {
        fail("crash-drill killed no worker — nothing was drilled");
    }

    // Resume on the same directory: the supervisor claims whatever the
    // dead workers orphaned (waiting out still-fresh leases) and merges
    // the shard journals into one summary.
    let ttl = std::time::Duration::from_millis(ttl_ms.max(1));
    let opts = ShardOptions {
        worker_id: "drill-resume".to_string(),
        lease_ttl: ttl,
        heartbeat: ttl / 4,
        ..ShardOptions::new(shards)
    };
    let merged = run_sharded_campaign(&w, &spec, dir, &opts, 2).expect("resume failed");

    if reference.render() != merged.render() || reference.records != merged.records {
        // Keep the journals and write both reports for the CI artifact.
        let _ = std::fs::write(dir.join("serial_reference.txt"), reference.render());
        let _ = std::fs::write(dir.join("sharded_merged.txt"), merged.render());
        eprintln!(
            "--- serial ---\n{}\n--- sharded ---\n{}",
            reference.render(),
            merged.render()
        );
        fail("sharded crash-drill report diverged from the serial run");
    }
    let q = merged
        .records
        .iter()
        .find(|r| r.seed == poison_seed)
        .unwrap_or_else(|| fail("poison seed missing from merged report"));
    if !q.quarantined || q.outcome != Outcome::Due {
        fail(&format!(
            "poison seed {poison_seed} not quarantined as Due (got {:?}, quarantined={})",
            q.outcome, q.quarantined
        ));
    }
    let _ = std::fs::remove_dir_all(dir);
    println!(
        "crash-drill ok: {died}/{shards} workers died, histogram {:?}, \
         merged report bit-identical to serial, seed {poison_seed} quarantined as Due",
        merged.counts
    );
}

/// Re-merges an existing drill directory without running anything —
/// handy when inspecting a failed drill's artifacts.
fn merge_only(shards: usize) {
    let w = smoke_workload();
    let spec = drill_spec(&w);
    let (summary, missing) =
        merge_shards(&w, &spec, std::path::Path::new(DRILL_DIR), shards).expect("merge failed");
    println!("{}", summary.render());
    if !missing.is_empty() {
        println!("missing {} seeds: {missing:?}", missing.len());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("smoke") => {
            smoke();
            return;
        }
        Some("shard-worker") => {
            let mut dir = None;
            let mut shards = 4usize;
            let mut worker_id = format!("pid{}", std::process::id());
            let mut ttl_ms = 30_000u64;
            let mut it = args.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--dir" => dir = it.next().cloned(),
                    "--shards" => {
                        shards = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| fail("--shards needs a positive integer"));
                    }
                    "--worker-id" => {
                        worker_id = it
                            .next()
                            .cloned()
                            .unwrap_or_else(|| fail("--worker-id needs a value"));
                    }
                    "--ttl-ms" => {
                        ttl_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| fail("--ttl-ms needs a positive integer"));
                    }
                    other => fail(&format!("unknown shard-worker argument {other:?}")),
                }
            }
            let dir = dir.unwrap_or_else(|| fail("shard-worker needs --dir"));
            shard_worker_main(std::path::Path::new(&dir), shards, &worker_id, ttl_ms);
            return;
        }
        Some("merge") => {
            let shards = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(4);
            merge_only(shards);
            return;
        }
        Some("fork-smoke") => {
            fork_smoke();
            return;
        }
        Some("bench-fork") => {
            let runs = args
                .get(1)
                .map(|v| {
                    v.parse()
                        .unwrap_or_else(|_| fail("bench-fork takes an optional run count"))
                })
                .unwrap_or(40);
            bench_fork(runs);
            return;
        }
        _ => {}
    }
    let mut runs = 100usize;
    let mut fork_points = DEFAULT_FORK_POINTS;
    let mut workload: Option<WorkloadSpec> = None;
    let mut shards: Option<usize> = None;
    let mut kill_after = 2usize;
    let mut ttl_ms = 2_000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                // `--json` may appear on either side of `--list`; scan
                // the full argv so both orders work.
                if args.iter().any(|a| a == "--json") {
                    // Same serialization the server's GET /catalog uses,
                    // so scripts can target either interchangeably.
                    println!("{}", flame_serve::catalog_json());
                } else {
                    flame_bench::print_catalog();
                }
                return;
            }
            "--json" => {}
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--runs needs a positive integer"));
            }
            "--fork-points" => {
                fork_points = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--fork-points needs a non-negative integer"));
            }
            "--shards" => {
                shards = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&s: &usize| s >= 2)
                        .unwrap_or_else(|| fail("--shards needs an integer >= 2")),
                );
            }
            "--kill-after" => {
                kill_after = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--kill-after needs a positive integer"));
            }
            "--ttl-ms" => {
                ttl_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--ttl-ms needs a positive integer"));
            }
            "--workload" => {
                let abbr = it
                    .next()
                    .unwrap_or_else(|| fail("--workload needs an abbreviation"));
                workload = Some(
                    flame_bench::workload_by_abbr(abbr)
                        .unwrap_or_else(|| fail(&format!("unknown workload {abbr:?}"))),
                );
            }
            other => fail(&format!("unknown argument {other:?} (try `smoke`)")),
        }
    }
    if let Some(shards) = shards {
        // `--shards N --kill-after n` runs the crash-injection drill.
        crash_drill(shards, kill_after, ttl_ms);
        return;
    }
    let w = workload.unwrap_or_else(smoke_workload);
    sweep(&w, runs, fork_points);
}
