//! Fault-campaign driver: coverage-vs-outcome sweeps and the
//! deterministic smoke campaign `scripts/verify.sh` asserts on.
//!
//! ```text
//! fault_campaign                  # coverage sweep on the built-in kernel
//! fault_campaign --workload LUD   # sweep a suite workload
//! fault_campaign --runs 400       # more seeds per coverage point
//! fault_campaign smoke            # pinned-histogram + resume smoke test
//! ```
//!
//! The sweep bombards one workload at several sensor-coverage levels and
//! prints the outcome taxonomy per level with Wilson 95% intervals — the
//! coverage-vs-SDC-rate curve. The smoke mode runs a small campaign
//! three ways (in memory, journaled, and resumed from a truncated
//! journal), asserts all three render byte-identically, and pins the
//! outcome histogram; any mismatch exits nonzero.

use flame_core::experiment::{run_scheme, ExperimentConfig, ProtocolConfig, WorkloadSpec};
use flame_core::runner::{run_campaign_runner, CampaignSpec, CampaignSummary};
use flame_core::scheme::Scheme;
use flame_core::Outcome;
use gpu_sim::builder::KernelBuilder;
use gpu_sim::isa::{MemSpace, Special};
use gpu_sim::sm::LaunchDims;
use std::sync::Arc;

/// A small arithmetic kernel (64 CTAs x 128 threads) whose output check
/// is bit-exact: any undetected in-flight corruption that reaches the
/// store shows up as SDC.
fn smoke_workload() -> WorkloadSpec {
    let mut b = KernelBuilder::new("smoke");
    let tid = b.special(Special::TidX);
    let cta = b.special(Special::CtaIdX);
    let ntid = b.special(Special::NTidX);
    let gid = b.imad(cta, ntid, tid);
    let a = b.imul(gid, 8);
    let v = b.ld_arr(MemSpace::Global, 0, a, 0);
    let mut acc = v;
    for i in 0..12 {
        acc = b.iadd(acc, i);
    }
    b.st_arr(MemSpace::Global, 0, a, acc, 0);
    b.exit();
    WorkloadSpec {
        name: "smoke",
        abbr: "SMOKE",
        suite: "campaign",
        kernel: b.finish(),
        dims: LaunchDims::linear(64, 128),
        init: Arc::new(|m| {
            for i in 0..8192u64 {
                m.write(i * 8, i);
            }
        }),
        check: Arc::new(|m| (0..8192u64).all(|i| m.read(i * 8) == i + 66)),
    }
}

fn spec_for(cfg: &ExperimentConfig, horizon: u64, coverage: f64, runs: usize) -> CampaignSpec {
    CampaignSpec {
        base_seed: 0x5EED,
        runs,
        strikes_per_run: 3,
        horizon,
        coverage,
        control_fraction: 0.15,
        recovery_fraction: 0.10,
        scheme: Scheme::SensorRenaming,
        cfg: cfg.clone(),
        proto: ProtocolConfig::default(),
    }
}

fn sweep(w: &WorkloadSpec, runs: usize) {
    let cfg = ExperimentConfig {
        max_cycles: 20_000_000,
        ..ExperimentConfig::default()
    };
    let clean = run_scheme(w, Scheme::SensorRenaming, &cfg).expect("clean run failed");
    let horizon = clean.stats.cycles * 3 / 4;
    println!(
        "Fault campaign — {} ({} runs x 3 strikes per coverage level, horizon {} cycles)\n",
        w.name, runs, horizon
    );
    println!(
        "{:>8}  {:>6} {:>9} {:>5} {:>4} {:>5}   {:<30}",
        "coverage", "masked", "recovered", "sdc", "due", "hang", "sdc rate [95% CI]"
    );
    for &coverage in &[1.0, 0.95, 0.85, 0.70, 0.50] {
        let spec = spec_for(&cfg, horizon, coverage, runs);
        let s = run_campaign_runner(w, &spec, None).expect("campaign failed");
        let k = s.count(Outcome::Sdc);
        let (lo, hi) = flame_core::wilson_interval(k, s.records.len(), 1.96);
        println!(
            "{:>8.2}  {:>6} {:>9} {:>5} {:>4} {:>5}   {:.4} [{:.4}, {:.4}]",
            coverage,
            s.count(Outcome::Masked),
            s.count(Outcome::DetectedRecovered),
            k,
            s.count(Outcome::Due),
            s.count(Outcome::Hang),
            s.rate(Outcome::Sdc),
            lo,
            hi
        );
    }
    println!(
        "\npipeline strikes are always recoverable at full coverage; coverage gaps\n\
         and control-flow/recovery-hardware hits are what convert strikes to SDCs."
    );
}

const SMOKE_RUNS: usize = 24;
const SMOKE_COVERAGE: f64 = 0.625;

/// The report the smoke campaign must reproduce byte-for-byte. The
/// campaign is deterministic; any drift means the fault model, the
/// protocol, or the runner changed behaviour. Legitimate changes
/// regenerate the golden with `FLAME_UPDATE_GOLDEN=1 fault_campaign
/// smoke` and commit the diff for review.
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/fault_smoke_golden.txt"
);

fn fail(msg: &str) -> ! {
    eprintln!("SMOKE FAILED: {msg}");
    std::process::exit(1);
}

fn check_same(label: &str, a: &CampaignSummary, b: &CampaignSummary) {
    if a.records != b.records || a.render() != b.render() {
        eprintln!(
            "--- expected ---\n{}\n--- got ---\n{}",
            a.render(),
            b.render()
        );
        fail(label);
    }
}

fn smoke() {
    let w = smoke_workload();
    let cfg = ExperimentConfig {
        max_cycles: 20_000_000,
        ..ExperimentConfig::default()
    };
    let clean = run_scheme(&w, Scheme::SensorRenaming, &cfg).expect("clean run failed");
    let spec = spec_for(&cfg, clean.stats.cycles * 3 / 4, SMOKE_COVERAGE, SMOKE_RUNS);

    // 1. In-memory reference run, pinned against the committed golden
    //    report (or regenerating it when FLAME_UPDATE_GOLDEN=1).
    let reference = run_campaign_runner(&w, &spec, None).expect("reference campaign failed");
    println!("{}", reference.render());
    if std::env::var("FLAME_UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(GOLDEN_PATH, reference.render())
            .unwrap_or_else(|e| fail(&format!("cannot write golden {GOLDEN_PATH}: {e}")));
        println!("golden report regenerated at {GOLDEN_PATH}");
    } else {
        let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
            fail(&format!(
                "cannot read golden {GOLDEN_PATH}: {e}\n\
                 (regenerate with FLAME_UPDATE_GOLDEN=1 fault_campaign smoke)"
            ))
        });
        if reference.render() != golden {
            eprintln!(
                "--- golden ({GOLDEN_PATH}) ---\n{golden}\n--- got ---\n{}",
                reference.render()
            );
            fail(
                "smoke report drifted from the golden file \
                 (if intentional: FLAME_UPDATE_GOLDEN=1 fault_campaign smoke)",
            );
        }
    }

    // 2. Journaled run: same summary, journal fully populated.
    let path = std::env::temp_dir().join(format!("flame_fault_smoke_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let journaled = run_campaign_runner(&w, &spec, Some(&path)).expect("journaled campaign failed");
    check_same(
        "journaled run diverged from in-memory run",
        &reference,
        &journaled,
    );

    // 3. Kill simulation: keep the header, 9 complete records and a
    //    half-written tail line, then resume. The resumed summary must be
    //    byte-identical and must have re-run exactly the missing seeds
    //    (including the truncated one).
    let text = std::fs::read_to_string(&path).expect("journal unreadable");
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() != 1 + SMOKE_RUNS {
        fail(&format!(
            "journal has {} lines, expected {}",
            lines.len(),
            1 + SMOKE_RUNS
        ));
    }
    let mut truncated: String = lines[..10].join("\n");
    truncated.push('\n');
    truncated.push_str(&lines[10][..lines[10].len() / 2]);
    std::fs::write(&path, truncated).expect("journal truncation failed");
    let resumed = run_campaign_runner(&w, &spec, Some(&path)).expect("resumed campaign failed");
    if resumed.ran_now != SMOKE_RUNS - 9 {
        fail(&format!(
            "resume re-ran {} seeds, expected {}",
            resumed.ran_now,
            SMOKE_RUNS - 9
        ));
    }
    check_same(
        "resumed run diverged from in-memory run",
        &reference,
        &resumed,
    );

    // 4. Second resume over the repaired journal: the truncated tail
    //    must have been newline-terminated on disk, or the record
    //    appended after it merges into a parseable hybrid line whose
    //    seed dedups the correct re-run away. Nothing should re-run and
    //    the report must still match.
    let again = run_campaign_runner(&w, &spec, Some(&path)).expect("second resume failed");
    if again.ran_now != 0 {
        fail(&format!(
            "second resume re-ran {} seeds, expected 0",
            again.ran_now
        ));
    }
    check_same("journal poisoned by the truncated tail", &reference, &again);
    let _ = std::fs::remove_file(&path);
    println!(
        "smoke ok: histogram {:?}, resume re-ran {} seeds",
        reference.counts, resumed.ran_now
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("smoke") {
        smoke();
        return;
    }
    let mut runs = 100usize;
    let mut workload: Option<WorkloadSpec> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                flame_bench::print_catalog();
                return;
            }
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--runs needs a positive integer"));
            }
            "--workload" => {
                let abbr = it
                    .next()
                    .unwrap_or_else(|| fail("--workload needs an abbreviation"));
                workload = Some(
                    flame_workloads::by_abbr(abbr)
                        .unwrap_or_else(|| fail(&format!("unknown workload {abbr:?}"))),
                );
            }
            other => fail(&format!("unknown argument {other:?} (try `smoke`)")),
        }
    }
    let w = workload.unwrap_or_else(smoke_workload);
    sweep(&w, runs);
}
