//! Figure 18: Flame's overhead under the four warp-scheduler models
//! (each normalized to the same scheduler's no-resilience baseline).

use flame_bench::{print_table, run_series, series_geomean, Series};
use flame_core::experiment::ExperimentConfig;
use flame_core::matrix::default_jobs;
use flame_core::scheme::Scheme;
use gpu_sim::scheduler::SchedulerKind;

fn main() {
    let suite = flame_workloads::all();
    println!("Figure 18 — Flame overhead per warp scheduler (WCDL=20, GTX480)\n");
    eprintln!(
        "running {} schedulers x {} workloads on {} worker(s)...",
        SchedulerKind::all().len(),
        suite.len(),
        default_jobs()
    );
    let spec: Vec<Series> = SchedulerKind::all()
        .iter()
        .map(|&sched| {
            let cfg = ExperimentConfig {
                sched,
                ..ExperimentConfig::default()
            };
            Series::named(sched.name(), Scheme::SensorRenaming, &cfg)
        })
        .collect();
    let series = run_series(&suite, &spec);
    let names: Vec<&str> = SchedulerKind::all().iter().map(|s| s.name()).collect();
    print_table(&names, &series);
    println!("\ngeomean overheads:");
    for (sched, s) in SchedulerKind::all().iter().zip(&series) {
        println!("  {sched}: {:+.2}%", (series_geomean(s) - 1.0) * 100.0);
    }
    println!("(paper: GTO 0.6%, LRR 0.76%, OLD 1.18%, 2-Level 1.58%)");
}
