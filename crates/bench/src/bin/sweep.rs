//! Parameterized single-cell experiment: run one workload under one
//! scheme on one configuration and print the details.
//!
//! Usage: sweep [WORKLOAD] [SCHEME] [WCDL] [SCHED] [GPU]
//!   WORKLOAD  Table-I abbreviation (default LUD)
//!   SCHEME    flame|sensor-ckpt|renaming|ckpt|dup-ren|dup-ckpt|
//!             hybrid-ren|hybrid-ckpt|naive|baseline   (default flame)
//!   WCDL      cycles (default 20)
//!   SCHED     gto|old|lrr|2level (default gto)
//!   GPU       gtx480|titanx|gv100|rtx2060 (default gtx480)

use flame_core::experiment::ExperimentConfig;
use flame_core::matrix::{run_matrix, MatrixCell};
use flame_core::report::dynamic_region_size;
use flame_core::scheme::Scheme;
use gpu_sim::config::GpuConfig;
use gpu_sim::scheduler::SchedulerKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let abbr = args.first().map_or("LUD", String::as_str);
    let scheme = match args.get(1).map_or("flame", String::as_str) {
        "flame" => Scheme::SensorRenaming,
        "sensor-ckpt" => Scheme::SensorCheckpointing,
        "renaming" => Scheme::Renaming,
        "ckpt" => Scheme::Checkpointing,
        "dup-ren" => Scheme::DuplicationRenaming,
        "dup-ckpt" => Scheme::DuplicationCheckpointing,
        "hybrid-ren" => Scheme::HybridRenaming,
        "hybrid-ckpt" => Scheme::HybridCheckpointing,
        "naive" => Scheme::NaiveSensorRenaming,
        "baseline" => Scheme::Baseline,
        other => panic!("unknown scheme `{other}`"),
    };
    let wcdl: u32 = args.get(2).map_or(20, |s| s.parse().expect("WCDL"));
    let sched = match args.get(3).map_or("gto", String::as_str) {
        "gto" => SchedulerKind::Gto,
        "old" => SchedulerKind::Old,
        "lrr" => SchedulerKind::Lrr,
        "2level" => SchedulerKind::TwoLevel,
        other => panic!("unknown scheduler `{other}`"),
    };
    let gpu = match args.get(4).map_or("gtx480", String::as_str) {
        "gtx480" => GpuConfig::gtx480(),
        "titanx" => GpuConfig::titan_x(),
        "gv100" => GpuConfig::gv100(),
        "rtx2060" => GpuConfig::rtx2060(),
        other => panic!("unknown GPU `{other}`"),
    };
    let w = flame_workloads::by_abbr(abbr).unwrap_or_else(|| panic!("unknown workload `{abbr}`"));
    let cfg = ExperimentConfig {
        gpu,
        sched,
        wcdl,
        ..ExperimentConfig::default()
    };
    // One matrix cell: the engine runs the baseline and the scheme and
    // hands back both (the baseline is reused outright when the scheme
    // *is* the baseline).
    let cell = run_matrix(
        std::slice::from_ref(&w),
        &[MatrixCell::new(0, scheme, cfg.clone())],
    )
    .pop()
    .expect("one cell in, one out")
    .expect("scheme run");
    let (base, r) = (cell.baseline, cell.run);
    assert!(r.output_ok, "output check failed");
    println!(
        "{} under {} (WCDL={}, {}, {})",
        w.abbr, scheme, wcdl, cfg.sched, cfg.gpu.name
    );
    println!("  baseline cycles:   {}", base.stats.cycles);
    println!(
        "  scheme cycles:     {}  ({:+.2}%)",
        r.stats.cycles,
        (cell.normalized - 1.0) * 100.0
    );
    println!(
        "  regions:           {} (static mean {:.1}, dynamic mean {:.1})",
        r.compile.regions,
        r.compile.mean_region_size,
        dynamic_region_size(&r.stats)
    );
    println!(
        "  regs/thread:       {} (spills {}, renames {}, ckpts {}, dups {})",
        r.compile.regs_per_thread,
        r.compile.spills,
        r.compile.renamed,
        r.compile.checkpoints,
        r.compile.duplicated
    );
    println!(
        "  boundaries:        {} crossed, {} descheduled, {} verified",
        r.stats.resilience.boundaries,
        r.stats.resilience.deschedules,
        r.stats.resilience.verifications
    );
    println!("  stalls:            {:?}", r.stats.stalls);
    println!("  memory:            {:?}", r.stats.mem);
}
