//! The campaign server binary, plus the end-to-end service-identity
//! smoke gate `scripts/verify.sh` runs.
//!
//! Run mode (the actual server):
//!
//! ```text
//! serve run [--addr 127.0.0.1:0] [--data-dir DIR] [--runner-threads N]
//! ```
//!
//! prints `listening on <addr>` once bound and serves until
//! SIGTERM/SIGINT, which drains gracefully: shard workers release
//! their leases between seeds, journals are already fsynced per
//! record, and interrupted campaigns resume on the next start.
//!
//! Smoke mode (`serve smoke`) drives a child server end to end:
//!
//! 1. serial reference campaign in-process, summary JSON pinned;
//! 2. child server: `POST /campaigns`, stream NDJSON to completion,
//!    final histogram must equal the serial bytes exactly;
//! 3. idempotent re-POST, catalog identity, per-seed trace artifact;
//! 4. SIGKILL the server mid-campaign (a second, longer campaign),
//!    restart on the same data dir, stream the *resumed* campaign to
//!    completion — byte-identical again;
//! 5. SIGTERM the restarted server and require a prompt, clean exit.
//!
//! On failure the divergent artifacts are left in `target/serve-smoke`
//! for CI to upload.

use flame_core::runner::run_campaign_runner;
use flame_core::SummaryJson;
use flame_serve::json::JsonValue;
use flame_serve::registry::Registry;
use flame_serve::{client, shutdown, Metrics};
use std::io::BufRead;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where the smoke drill stages its data dir and divergence artifacts;
/// CI uploads it when the gate fails.
const SMOKE_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/serve-smoke");

/// Lease TTL for the drill's servers: short enough that the restarted
/// server reclaims a SIGKILLed predecessor's leases in ~2 s instead of
/// the 30 s production default.
const SMOKE_TTL_MS: &str = "2000";

fn fail(msg: &str) -> ! {
    eprintln!("SERVE SMOKE FAILED: {msg}");
    eprintln!("artifacts (if any) kept in {SMOKE_DIR}");
    std::process::exit(1);
}

fn run_server(addr: &str, data_dir: &Path, runner_threads: usize) {
    let flag = shutdown::install();
    let listener =
        TcpListener::bind(addr).unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));
    let local = listener
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("local_addr: {e}")));
    let metrics = Arc::new(Metrics::new());
    let registry = Arc::new(
        Registry::new(data_dir.to_path_buf(), metrics, flag.clone())
            .unwrap_or_else(|e| fail(&format!("cannot open data dir: {e}"))),
    );
    // The parent (or an operator's script) scrapes this exact line for
    // the ephemeral port.
    println!("listening on {local}");
    println!("data dir {}", data_dir.display());
    flame_serve::serve(listener, registry, flag, runner_threads)
        .unwrap_or_else(|e| fail(&format!("serve: {e}")));
    println!("serve: drained after shutdown signal");
}

// ---------------------------------------------------------------------
// smoke drill
// ---------------------------------------------------------------------

struct ChildServer {
    child: Child,
    addr: String,
}

/// Spawns a child server on an ephemeral port and scrapes its address.
fn spawn_server(data_dir: &Path) -> ChildServer {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .args([
            "run",
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf-8 data dir"),
            "--runner-threads",
            "2",
        ])
        .env("FLAME_LEASE_TTL_MS", SMOKE_TTL_MS)
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn server: {e}")));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .unwrap_or_else(|e| fail(&format!("server produced no address line: {e}")));
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| fail(&format!("unexpected server banner {line:?}")))
        .to_string();
    // Keep draining the child's stdout so it never blocks on a full
    // pipe; the drill reads nothing further from it.
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });
    ChildServer { child, addr }
}

fn wait_exit(child: &mut Child, within: Duration) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + within;
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => return Some(status),
            None if Instant::now() >= deadline => return None,
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// The serial reference for a request body: parse it through the very
/// same `parse_campaign_request` the server uses, run it with the
/// serial journaling runner, and serialize through the very same
/// `SummaryJson::to_json`. Any byte of divergence after that is a real
/// behaviour difference, not a formatting one.
fn serial_reference(body: &str) -> (flame_serve::CampaignRequest, String) {
    let req = flame_serve::parse_campaign_request(body)
        .unwrap_or_else(|e| fail(&format!("reference body rejected: {e}")));
    let summary = run_campaign_runner(&req.workload, &req.spec, None)
        .unwrap_or_else(|e| fail(&format!("serial reference failed: {e}")));
    let json = SummaryJson::from_summary(&summary).to_json();
    (req, json)
}

fn dump_artifact(name: &str, content: &str) {
    let _ = std::fs::create_dir_all(SMOKE_DIR);
    let _ = std::fs::write(Path::new(SMOKE_DIR).join(name), content);
}

/// Extracts `"summary":{...}` from a final stream/status line without
/// re-serializing (byte comparisons must see the server's own bytes).
fn summary_bytes(line: &str) -> &str {
    let key = "\"summary\":";
    let at = line
        .find(key)
        .unwrap_or_else(|| fail(&format!("line has no summary: {line}")));
    let s = &line[at + key.len()..];
    s.strip_suffix('}')
        .unwrap_or_else(|| fail(&format!("malformed summary line: {line}")))
}

fn assert_summary_identical(label: &str, line: &str, reference: &str) {
    let got = summary_bytes(line);
    if got != reference {
        dump_artifact(&format!("{label}_expected.json"), reference);
        dump_artifact(&format!("{label}_actual.json"), got);
        fail(&format!(
            "{label}: server summary diverged from serial reference \
             (artifacts in {SMOKE_DIR})"
        ));
    }
}

fn get_field(body: &str, field: &str) -> Option<u64> {
    JsonValue::parse(body).ok()?.get(field)?.as_u64()
}

fn smoke() {
    let dir = Path::new(SMOKE_DIR);
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| fail(&format!("cannot create {SMOKE_DIR}: {e}")));
    let data_dir = dir.join("data");

    // Campaign A: small and fast — the byte-identity workhorse.
    let body_a = r#"{"workload":"Triad","scheme":"flame","runs":10,"horizon":4000,
                    "max_cycles":20000000,"coverage":0.625,"shards":3,"workers":2}"#;
    // Campaign B: long enough (BP is the longest catalog workload, one
    // worker thread) that SIGKILLing the server mid-campaign is easy.
    let body_b = r#"{"workload":"BP","scheme":"flame","runs":16,"horizon":60000,
                    "max_cycles":20000000,"coverage":0.625,"base_seed":777,
                    "shards":4,"workers":1}"#;

    println!("serve-smoke: computing serial references (A: Triad, B: BP)");
    let (req_a, ref_a) = serial_reference(body_a);
    let (req_b, ref_b) = serial_reference(body_b);
    let (id_a, id_b) = (req_a.id(), req_b.id());
    if id_a == id_b {
        fail("campaign ids collided");
    }

    // ---- phase 1: submit, stream, verify byte identity ----
    let mut server = spawn_server(&data_dir);
    let addr = server.addr.clone();
    println!("serve-smoke: server 1 on {addr}");

    let catalog =
        client::get(&addr, "/catalog").unwrap_or_else(|e| fail(&format!("GET /catalog: {e}")));
    if catalog.status != 200 || catalog.body.trim() != flame_serve::catalog_json() {
        fail("GET /catalog diverged from flame_serve::catalog_json()");
    }

    let post =
        client::post(&addr, "/campaigns", body_a).unwrap_or_else(|e| fail(&format!("POST A: {e}")));
    if post.status != 201 || !post.body.contains(&id_a) {
        fail(&format!(
            "POST A: expected 201 with id {id_a}, got {} {}",
            post.status, post.body
        ));
    }
    let again = client::post(&addr, "/campaigns", body_a)
        .unwrap_or_else(|e| fail(&format!("re-POST A: {e}")));
    if again.status != 200 || !again.body.contains("\"created\":false") {
        fail("re-POST of an identical spec must be idempotent (200, created:false)");
    }

    let lines = client::stream_ndjson(&addr, &format!("/campaigns/{id_a}/stream"), |_| {})
        .unwrap_or_else(|e| fail(&format!("stream A: {e}")));
    let last = lines.last().unwrap_or_else(|| fail("stream A was empty"));
    if !last.contains("\"complete\":true") || !last.contains("\"state\":\"complete\"") {
        dump_artifact("stream_a.ndjson", &lines.join("\n"));
        fail(&format!("stream A did not complete: {last}"));
    }
    assert_summary_identical("campaign_a", last, &ref_a);
    let status = client::get(&addr, &format!("/campaigns/{id_a}"))
        .unwrap_or_else(|e| fail(&format!("GET A: {e}")));
    assert_summary_identical("campaign_a_status", status.body.trim(), &ref_a);
    println!(
        "serve-smoke: campaign A streamed {} snapshots, final histogram bit-identical to serial",
        lines.len()
    );

    // Trace artifact for an interesting seed (SDC/DUE if the histogram
    // has one, any seed otherwise).
    let seed = req_a.spec.base_seed;
    let trace = client::get(&addr, &format!("/campaigns/{id_a}/runs/{seed}/trace"))
        .unwrap_or_else(|e| fail(&format!("GET trace: {e}")));
    if trace.status != 200 {
        fail(&format!("trace endpoint returned {}", trace.status));
    }
    flame_trace::validate_json(&trace.body)
        .unwrap_or_else(|e| fail(&format!("trace artifact is not valid JSON: {e}")));
    if !trace.body.contains("traceEvents") {
        fail("trace artifact lacks traceEvents");
    }

    let metrics =
        client::get(&addr, "/metrics").unwrap_or_else(|e| fail(&format!("GET /metrics: {e}")));
    if !metrics.body.contains("flame_seeds_run_total") {
        fail("metrics page lacks flame_seeds_run_total");
    }

    // ---- phase 2: SIGKILL mid-campaign, restart, resume ----
    let post_b =
        client::post(&addr, "/campaigns", body_b).unwrap_or_else(|e| fail(&format!("POST B: {e}")));
    if post_b.status != 201 {
        fail(&format!("POST B: {} {}", post_b.status, post_b.body));
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if Instant::now() >= deadline {
            fail("campaign B never reached a mid-flight state to kill");
        }
        let st = client::get(&addr, &format!("/campaigns/{id_b}"))
            .unwrap_or_else(|e| fail(&format!("poll B: {e}")));
        let done = get_field(&st.body, "done").unwrap_or(0);
        let total = get_field(&st.body, "total").unwrap_or(0);
        if done >= 1 && done < total {
            println!("serve-smoke: SIGKILLing server 1 at {done}/{total} seeds of campaign B");
            break;
        }
        if total > 0 && done == total {
            fail("campaign B completed before it could be killed mid-flight; grow its runs");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    server.child.kill().expect("SIGKILL server 1");
    let _ = server.child.wait();

    let mut server2 = spawn_server(&data_dir);
    let addr2 = server2.addr.clone();
    println!("serve-smoke: server 2 on {addr2} (same data dir, rediscovering)");

    // The restarted server must already know both campaigns.
    let list = client::get(&addr2, "/campaigns")
        .unwrap_or_else(|e| fail(&format!("GET /campaigns after restart: {e}")));
    if !list.body.contains(&id_a) || !list.body.contains(&id_b) {
        fail(&format!(
            "restarted server lost campaigns (want {id_a} and {id_b}): {}",
            list.body
        ));
    }

    let lines_b = client::stream_ndjson(&addr2, &format!("/campaigns/{id_b}/stream"), |_| {})
        .unwrap_or_else(|e| fail(&format!("stream B after restart: {e}")));
    let last_b = lines_b.last().unwrap_or_else(|| fail("stream B was empty"));
    if !last_b.contains("\"state\":\"complete\"") {
        dump_artifact("stream_b.ndjson", &lines_b.join("\n"));
        fail(&format!("resumed campaign B did not complete: {last_b}"));
    }
    assert_summary_identical("campaign_b_resumed", last_b, &ref_b);
    // Campaign A survived the SIGKILL too: recomputed from its
    // journals, still byte-identical.
    let status_a = client::get(&addr2, &format!("/campaigns/{id_a}"))
        .unwrap_or_else(|e| fail(&format!("GET A after restart: {e}")));
    assert_summary_identical("campaign_a_after_restart", status_a.body.trim(), &ref_a);
    println!("serve-smoke: campaign B resumed across SIGKILL, bit-identical to serial");

    // ---- phase 3: graceful shutdown ----
    if !shutdown::send_signal(server2.child.id(), shutdown::SIGTERM) {
        fail("cannot SIGTERM server 2");
    }
    match wait_exit(&mut server2.child, Duration::from_secs(30)) {
        Some(status) if status.success() => {}
        Some(status) => fail(&format!(
            "server 2 exited uncleanly after SIGTERM: {status}"
        )),
        None => {
            let _ = server2.child.kill();
            fail("server 2 ignored SIGTERM for 30 s");
        }
    }
    println!("serve-smoke: SIGTERM drained server 2 cleanly");

    let _ = std::fs::remove_dir_all(dir);
    println!(
        "serve-smoke ok: POST/stream/status summaries bit-identical to serial runs, \
         identity held across SIGKILL + restart, SIGTERM drains gracefully"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("smoke") => smoke(),
        Some("run") | None => {
            let mut addr = "127.0.0.1:7341".to_string();
            let mut data_dir = PathBuf::from("flame-campaigns");
            let mut runner_threads = 2usize;
            let mut it = args.iter().skip(usize::from(!args.is_empty()));
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        addr = it
                            .next()
                            .cloned()
                            .unwrap_or_else(|| fail("--addr needs host:port"));
                    }
                    "--data-dir" => {
                        data_dir = it
                            .next()
                            .map(PathBuf::from)
                            .unwrap_or_else(|| fail("--data-dir needs a path"));
                    }
                    "--runner-threads" => {
                        runner_threads = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| fail("--runner-threads needs a positive integer"));
                    }
                    other => fail(&format!(
                        "unknown argument {other:?} (try `run` or `smoke`)"
                    )),
                }
            }
            run_server(&addr, &data_dir, runner_threads);
        }
        Some(other) => fail(&format!("unknown mode {other:?} (try `run` or `smoke`)")),
    }
}
