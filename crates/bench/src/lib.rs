//! # flame-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (run them with
//! `cargo run --release -p flame-bench --bin <name>`):
//!
//! | binary         | reproduces                                        |
//! |----------------|---------------------------------------------------|
//! | `table1`       | Table I — the benchmark inventory                 |
//! | `fig12`        | Figure 12 — WCDL vs. sensors/SM, 4 GPUs           |
//! | `table2`       | Table II — sensors for 20-cycle WCDL              |
//! | `fig13_14`     | Figures 13/14/15 — all schemes × all workloads    |
//! | `fig16`        | Figure 16 — region-extension optimization impact  |
//! | `fig17`        | Figure 17 — WCDL sensitivity (10–50 cycles)       |
//! | `fig18`        | Figure 18 — scheduler sensitivity                 |
//! | `fig19`        | Figure 19 — GPU architecture sensitivity          |
//! | `region_stats` | §IV — region sizes, false positives, §VI-A costs  |
//! | `fig4_naive`   | Figure 4 — the naive-verification motivation      |
//! | `perfstat`     | serial-vs-parallel engine throughput, as JSON     |
//! | `trace`        | cycle-level event trace of any cell, Chrome JSON  |
//!
//! `perfstat`, `fault_campaign` and `trace` all accept `--list`, which
//! prints the catalog of workloads, scheme keys, GPU models and
//! scheduler policies ([`print_catalog`]).
//!
//! The shared code here expresses each figure as a set of [`Series`] over
//! a workload suite, lowers them onto the parallel matrix engine
//! ([`flame_core::matrix`]) — one [`flame_core::matrix::run_matrix`] call
//! per figure, so baselines are simulated once and shared across every
//! series — and prints aligned tables with per-app normalized execution
//! times and the geometric mean, matching the figures' structure. Set
//! `FLAME_JOBS` to control the worker count.

use flame_core::experiment::{geomean, ExperimentConfig, RunResult, WorkloadSpec};
use flame_core::matrix::{run_matrix, MatrixCell};
use flame_core::scheme::Scheme;

/// A single matrix cell: normalized time of `scheme` on one workload.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload abbreviation.
    pub abbr: &'static str,
    /// Normalized execution time (scheme cycles / baseline cycles).
    pub normalized: f64,
    /// The raw run.
    pub run: RunResult,
}

/// One column of a figure: a scheme under a configuration.
#[derive(Debug, Clone)]
pub struct Series {
    /// Column label.
    pub name: String,
    /// Scheme to run.
    pub scheme: Scheme,
    /// Configuration to run under.
    pub cfg: ExperimentConfig,
}

impl Series {
    /// A series labelled with the scheme's own name.
    pub fn of(scheme: Scheme, cfg: &ExperimentConfig) -> Series {
        Series {
            name: scheme.name().to_string(),
            scheme,
            cfg: cfg.clone(),
        }
    }

    /// A series with an explicit label.
    pub fn named(name: impl Into<String>, scheme: Scheme, cfg: &ExperimentConfig) -> Series {
        Series {
            name: name.into(),
            scheme,
            cfg: cfg.clone(),
        }
    }
}

/// Runs every series over every workload as **one** parallel matrix and
/// returns the per-series cells. Baselines are shared across series with
/// equal configs (Figure 13/14's nine schemes share one baseline per
/// workload instead of nine). Panics on simulation errors or output
/// mismatches — a figure regenerated from wrong outputs would be
/// meaningless.
pub fn run_series(suite: &[WorkloadSpec], series: &[Series]) -> Vec<Vec<Cell>> {
    let cells: Vec<MatrixCell> = series
        .iter()
        .flat_map(|s| {
            suite
                .iter()
                .enumerate()
                .map(|(w, _)| MatrixCell::new(w, s.scheme, s.cfg.clone()))
        })
        .collect();
    let mut results = run_matrix(suite, &cells).into_iter();
    series
        .iter()
        .map(|s| {
            suite
                .iter()
                .map(|w| {
                    let r = results
                        .next()
                        .expect("one result per cell")
                        .unwrap_or_else(|e| panic!("{} {}: {e}", w.abbr, s.name));
                    assert!(r.baseline.output_ok, "{} baseline output wrong", w.abbr);
                    assert!(r.run.output_ok, "{} {} output wrong", w.abbr, s.name);
                    Cell {
                        abbr: w.abbr,
                        normalized: r.normalized,
                        run: r.run,
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs `scheme` over every workload in `suite`, normalizing to a
/// baseline run under the same `cfg`. A one-series [`run_series`].
pub fn run_suite(suite: &[WorkloadSpec], scheme: Scheme, cfg: &ExperimentConfig) -> Vec<Cell> {
    run_series(suite, &[Series::of(scheme, cfg)])
        .pop()
        .expect("one series in, one out")
}

/// Prints a per-app table: one row per workload, one column per series.
pub fn print_table(series_names: &[&str], series: &[Vec<Cell>]) {
    assert_eq!(series_names.len(), series.len());
    print!("{:<12}", "app");
    for name in series_names {
        print!(" {name:>22}");
    }
    println!();
    let napps = series[0].len();
    for i in 0..napps {
        print!("{:<12}", series[0][i].abbr);
        for s in series {
            print!(" {:>22.4}", s[i].normalized);
        }
        println!();
    }
    print!("{:<12}", "GEOMEAN");
    for s in series {
        let g = geomean(&s.iter().map(|c| c.normalized).collect::<Vec<_>>());
        print!(" {g:>22.4}");
    }
    println!();
}

/// Geometric mean of a series' normalized times.
pub fn series_geomean(cells: &[Cell]) -> f64 {
    geomean(&cells.iter().map(|c| c.normalized).collect::<Vec<_>>())
}

/// The default experiment configuration of the paper's evaluation
/// (GTX 480, GTO, WCDL = 20).
pub fn paper_default() -> ExperimentConfig {
    ExperimentConfig::default()
}

/// Prints the experiment catalog — every workload, scheme key, GPU model
/// and scheduler policy the binaries accept. Shared by the `--list` flag
/// of `perfstat`, `fault_campaign` and `trace`, so the valid values of
/// `--workload`/`--scheme`/`--gpu`/`--sched` are discoverable from any of
/// them.
pub fn print_catalog() {
    println!("workloads (--workload ABBR):");
    for w in flame_workloads::all() {
        println!("  {:<10} {:<28} [{}]", w.abbr, w.name, w.suite);
    }
    println!("\nschemes (--scheme KEY):");
    for s in Scheme::all() {
        println!("  {:<22} {}", s.key(), s.name());
    }
    println!("\ngpus (--gpu NAME):");
    for g in gpu_sim::config::GpuConfig::paper_architectures() {
        println!(
            "  {:<10} {} SMs, {} MHz, {} warps/SM",
            g.name, g.num_sms, g.core_clock_mhz, g.max_warps_per_sm
        );
    }
    println!("\nschedulers (--sched NAME):");
    for k in gpu_sim::scheduler::SchedulerKind::all() {
        println!("  {}", k.name());
    }
}

/// Looks up a workload by its catalog abbreviation (`--workload ABBR`),
/// case-sensitively, exactly as [`print_catalog`] lists them. The bench
/// binaries share these four lookups so a flag accepted by one resolves
/// identically in all of them.
pub fn workload_by_abbr(abbr: &str) -> Option<WorkloadSpec> {
    flame_workloads::by_abbr(abbr)
}

/// Looks up a scheme by its catalog key (`--scheme KEY`).
pub fn scheme_by_key(key: &str) -> Option<Scheme> {
    Scheme::by_key(key)
}

/// Looks up a GPU model by name (`--gpu NAME`), case-insensitively.
pub fn gpu_by_name(name: &str) -> Option<gpu_sim::config::GpuConfig> {
    gpu_sim::config::GpuConfig::paper_architectures()
        .into_iter()
        .find(|g| g.name.eq_ignore_ascii_case(name))
}

/// Looks up a scheduler policy by name (`--sched NAME`),
/// case-insensitively.
pub fn sched_by_name(name: &str) -> Option<gpu_sim::scheduler::SchedulerKind> {
    gpu_sim::scheduler::SchedulerKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flame_core::experiment::prepare_count;

    #[test]
    fn catalog_lookups_resolve_listed_entries() {
        // Every entry print_catalog() lists must resolve through the
        // shared lookups, and garbage must not.
        for w in flame_workloads::all() {
            assert_eq!(workload_by_abbr(w.abbr).map(|x| x.abbr), Some(w.abbr));
        }
        for s in Scheme::all() {
            assert_eq!(scheme_by_key(s.key()), Some(s));
        }
        for g in gpu_sim::config::GpuConfig::paper_architectures() {
            assert_eq!(gpu_by_name(g.name).map(|x| x.name), Some(g.name));
            assert_eq!(
                gpu_by_name(&g.name.to_uppercase()).map(|x| x.name),
                Some(g.name)
            );
        }
        for k in gpu_sim::scheduler::SchedulerKind::all() {
            assert_eq!(sched_by_name(k.name()), Some(k));
        }
        assert!(workload_by_abbr("no-such-workload").is_none());
        assert!(scheme_by_key("no-such-scheme").is_none());
        assert!(gpu_by_name("no-such-gpu").is_none());
        assert!(sched_by_name("no-such-sched").is_none());
    }

    // A single test fn: the prepare counter is process-global, and a
    // sibling test running concurrently would skew the exact counts.
    #[test]
    fn suite_and_series_share_baselines() {
        let suite = vec![flame_workloads::by_abbr("Triad").unwrap()];
        let cfg = paper_default();

        let cells = run_suite(&suite, Scheme::Renaming, &cfg);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].normalized > 0.5 && cells[0].normalized < 2.0);
        assert!((series_geomean(&cells) - cells[0].normalized).abs() < 1e-12);

        // Two series over one workload with one shared config: 1 baseline
        // + 2 scheme runs, not 4 simulations.
        let before = prepare_count();
        let series = run_series(
            &suite,
            &[
                Series::of(Scheme::Renaming, &cfg),
                Series::of(Scheme::Checkpointing, &cfg),
            ],
        );
        assert_eq!(
            prepare_count() - before,
            3,
            "series must share one baseline"
        );
        assert_eq!(series.len(), 2);
        assert_eq!(series[0][0].abbr, "Triad");
        assert!(series.iter().all(|s| s[0].normalized >= 1.0));
    }
}
