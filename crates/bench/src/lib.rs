//! # flame-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (run them with
//! `cargo run --release -p flame-bench --bin <name>`):
//!
//! | binary         | reproduces                                        |
//! |----------------|---------------------------------------------------|
//! | `table1`       | Table I — the benchmark inventory                 |
//! | `fig12`        | Figure 12 — WCDL vs. sensors/SM, 4 GPUs           |
//! | `table2`       | Table II — sensors for 20-cycle WCDL              |
//! | `fig13_14`     | Figures 13/14/15 — all schemes × all workloads    |
//! | `fig16`        | Figure 16 — region-extension optimization impact  |
//! | `fig17`        | Figure 17 — WCDL sensitivity (10–50 cycles)       |
//! | `fig18`        | Figure 18 — scheduler sensitivity                 |
//! | `fig19`        | Figure 19 — GPU architecture sensitivity          |
//! | `region_stats` | §IV — region sizes, false positives, §VI-A costs  |
//! | `fig4_naive`   | Figure 4 — the naive-verification motivation      |
//!
//! The shared code here runs `(workload, scheme, config)` matrices and
//! prints aligned tables with per-app normalized execution times and the
//! geometric mean, matching the figures' structure.

use flame_core::experiment::{geomean, run_scheme, ExperimentConfig, RunResult, WorkloadSpec};
use flame_core::scheme::Scheme;

/// A single matrix cell: normalized time of `scheme` on one workload.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Workload abbreviation.
    pub abbr: &'static str,
    /// Normalized execution time (scheme cycles / baseline cycles).
    pub normalized: f64,
    /// The raw run.
    pub run: RunResult,
}

/// Runs `scheme` over every workload in `suite`, normalizing to a
/// baseline run under the same `cfg`. Panics on simulation errors or
/// output mismatches — a figure regenerated from wrong outputs would be
/// meaningless.
pub fn run_suite(suite: &[WorkloadSpec], scheme: Scheme, cfg: &ExperimentConfig) -> Vec<Cell> {
    suite
        .iter()
        .map(|w| {
            let base = run_scheme(w, Scheme::Baseline, cfg)
                .unwrap_or_else(|e| panic!("{} baseline: {e}", w.abbr));
            assert!(base.output_ok, "{} baseline output wrong", w.abbr);
            let run = run_scheme(w, scheme, cfg)
                .unwrap_or_else(|e| panic!("{} {scheme}: {e}", w.abbr));
            assert!(run.output_ok, "{} {scheme} output wrong", w.abbr);
            Cell {
                abbr: w.abbr,
                normalized: run.stats.cycles as f64 / base.stats.cycles as f64,
                run,
            }
        })
        .collect()
}

/// Prints a per-app table: one row per workload, one column per series.
pub fn print_table(series_names: &[&str], series: &[Vec<Cell>]) {
    assert_eq!(series_names.len(), series.len());
    print!("{:<12}", "app");
    for name in series_names {
        print!(" {name:>22}");
    }
    println!();
    let napps = series[0].len();
    for i in 0..napps {
        print!("{:<12}", series[0][i].abbr);
        for s in series {
            print!(" {:>22.4}", s[i].normalized);
        }
        println!();
    }
    print!("{:<12}", "GEOMEAN");
    for s in series {
        let g = geomean(&s.iter().map(|c| c.normalized).collect::<Vec<_>>());
        print!(" {g:>22.4}");
    }
    println!();
}

/// Geometric mean of a series' normalized times.
pub fn series_geomean(cells: &[Cell]) -> f64 {
    geomean(&cells.iter().map(|c| c.normalized).collect::<Vec<_>>())
}

/// The default experiment configuration of the paper's evaluation
/// (GTX 480, GTO, WCDL = 20).
pub fn paper_default() -> ExperimentConfig {
    ExperimentConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_suite_on_one_workload() {
        let suite = vec![flame_workloads::by_abbr("Triad").unwrap()];
        let cells = run_suite(&suite, Scheme::Renaming, &paper_default());
        assert_eq!(cells.len(), 1);
        assert!(cells[0].normalized > 0.5 && cells[0].normalized < 2.0);
        assert!((series_geomean(&cells) - cells[0].normalized).abs() < 1e-12);
    }
}
