//! Micro-benchmarks of the core mechanisms: the RBQ conveyor, the RPT,
//! the compiler passes, and raw simulator throughput.
//!
//! A self-contained `std::time`-based harness (no external benchmarking
//! crate: the workspace builds with no registry access). Each benchmark
//! runs a warm-up pass, then `FLAME_BENCH_ITERS` timed iterations
//! (default 20) and reports the minimum, median and mean wall-clock time
//! per iteration — the minimum is the least noisy estimator on a shared
//! machine.
//!
//! Run with `cargo bench -p flame-bench`.

use flame_compiler::pipeline::{build, BuildOptions};
use flame_core::rbq::Rbq;
use flame_core::rpt::Rpt;
use gpu_sim::builder::KernelBuilder;
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::Gpu;
use gpu_sim::isa::{MemSpace, Special};
use gpu_sim::scheduler::SchedulerKind;
use gpu_sim::sm::LaunchDims;
use gpu_sim::warp::{RecoveryPoint, SimtStack};
use std::time::{Duration, Instant};

fn sample_kernel() -> gpu_sim::Kernel {
    let mut b = KernelBuilder::new("bench");
    let tid = b.special(Special::TidX);
    let a = b.imul(tid, 8);
    let v = b.ld_arr(MemSpace::Global, 0, a, 0);
    let mut acc = v;
    for i in 0..24 {
        acc = b.iadd(acc, i);
    }
    b.st_arr(MemSpace::Global, 0, a, acc, 0);
    b.exit();
    b.finish()
}

fn point(pc: u32) -> RecoveryPoint {
    RecoveryPoint {
        stack: SimtStack::new(pc, u32::MAX).snapshot(),
        barrier_phase: 0,
        restores: Vec::new(),
    }
}

/// Times `f` over the configured iteration count and prints a report
/// line. The closure's return value is consumed with `std::hint::black_box`
/// so the work cannot be optimized away.
fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) {
    // Warm-up (also pays one-time cache/allocation costs).
    std::hint::black_box(f());
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<24} min {:>12?}  median {:>12?}  mean {:>12?}  ({iters} iters)",
        min, median, mean
    );
}

fn main() {
    let iters: usize = std::env::var("FLAME_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    bench("rbq_push_pop_1k", iters, || {
        let mut q = Rbq::new(20);
        for i in 0..1000u64 {
            q.push(i, (i % 24) as usize);
            let _ = q.pop(i + 20);
        }
        q.is_empty()
    });

    bench("rpt_update_1k", iters, || {
        let mut t = Rpt::new(48);
        for i in 0..1000u32 {
            t.set((i % 48) as usize, point(i));
        }
        t.all_live()
    });

    let k = sample_kernel();
    bench("compile_baseline", iters, || {
        build(&k, &BuildOptions::baseline(63)).unwrap()
    });
    bench("compile_flame", iters, || {
        build(&k, &BuildOptions::flame(63, 20)).unwrap()
    });

    let flat = build(&sample_kernel(), &BuildOptions::baseline(63))
        .unwrap()
        .flat;
    bench("simulate_64_ctas", iters, || {
        let mut gpu = Gpu::launch(
            GpuConfig::gtx480(),
            flat.clone(),
            LaunchDims::linear(64, 128),
            SchedulerKind::Gto,
        )
        .unwrap();
        gpu.run(10_000_000).unwrap()
    });
}
