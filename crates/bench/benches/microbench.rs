//! Criterion micro-benchmarks of the core mechanisms: the RBQ conveyor,
//! the RPT, the compiler passes, and raw simulator throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flame_compiler::pipeline::{build, BuildOptions};
use flame_core::rbq::Rbq;
use flame_core::rpt::Rpt;
use gpu_sim::builder::KernelBuilder;
use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::Gpu;
use gpu_sim::isa::{MemSpace, Special};
use gpu_sim::scheduler::SchedulerKind;
use gpu_sim::sm::LaunchDims;
use gpu_sim::warp::{RecoveryPoint, SimtStack};

fn sample_kernel() -> gpu_sim::Kernel {
    let mut b = KernelBuilder::new("bench");
    let tid = b.special(Special::TidX);
    let a = b.imul(tid, 8);
    let v = b.ld_arr(MemSpace::Global, 0, a, 0);
    let mut acc = v;
    for i in 0..24 {
        acc = b.iadd(acc, i);
    }
    b.st_arr(MemSpace::Global, 0, a, acc, 0);
    b.exit();
    b.finish()
}

fn point(pc: u32) -> RecoveryPoint {
    RecoveryPoint {
        stack: SimtStack::new(pc, u32::MAX).snapshot(),
        barrier_phase: 0,
        restores: Vec::new(),
    }
}

fn bench_rbq(c: &mut Criterion) {
    c.bench_function("rbq_push_pop_1k", |b| {
        b.iter_batched(
            || Rbq::new(20),
            |mut q| {
                for i in 0..1000u64 {
                    q.push(i, (i % 24) as usize);
                    let _ = q.pop(i + 20);
                }
                q
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_rpt(c: &mut Criterion) {
    c.bench_function("rpt_update_1k", |b| {
        b.iter_batched(
            || Rpt::new(48),
            |mut t| {
                for i in 0..1000u32 {
                    t.set((i % 48) as usize, point(i));
                }
                t.all_live()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_compile(c: &mut Criterion) {
    let k = sample_kernel();
    c.bench_function("compile_baseline", |b| {
        b.iter(|| build(&k, &BuildOptions::baseline(63)).unwrap());
    });
    c.bench_function("compile_flame", |b| {
        b.iter(|| build(&k, &BuildOptions::flame(63, 20)).unwrap());
    });
}

fn bench_sim(c: &mut Criterion) {
    let flat = build(&sample_kernel(), &BuildOptions::baseline(63))
        .unwrap()
        .flat;
    c.bench_function("simulate_64_ctas", |b| {
        b.iter_batched(
            || {
                Gpu::launch(
                    GpuConfig::gtx480(),
                    flat.clone(),
                    LaunchDims::linear(64, 128),
                    SchedulerKind::Gto,
                )
                .unwrap()
            },
            |mut gpu| gpu.run(10_000_000).unwrap(),
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rbq, bench_rpt, bench_compile, bench_sim
}
criterion_main!(benches);
