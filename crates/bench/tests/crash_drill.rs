//! Process-level crash drills for the sharded campaign supervisor,
//! driving the real `fault_campaign` binary: workers are separate OS
//! processes that get `SIGKILL`ed and hard-abort mid-campaign, exactly
//! like the verify.sh gate — nothing in-process to soften the blow.

use std::path::PathBuf;
use std::process::Command;

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_fault_campaign")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("flame_crash_drill_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Acceptance drill: `fault_campaign --shards 3 --kill-after 2` must
/// SIGKILL/abort workers mid-campaign, resume, verify the merged
/// histogram against its in-process serial run, and exit 0. All the
/// bit-identity assertions live inside the drill; the test asserts the
/// drill passes as a whole.
#[test]
fn crash_drill_passes_end_to_end() {
    let out = Command::new(exe())
        .args(["--shards", "3", "--kill-after", "2", "--ttl-ms", "1200"])
        .output()
        .expect("spawn fault_campaign drill");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "drill failed\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );
    assert!(stdout.contains("crash-drill ok"), "{stdout}");
    assert!(
        stdout.contains("bit-identical to serial"),
        "drill did not verify bit-identity:\n{stdout}"
    );
    assert!(
        stdout.contains("quarantined as Due"),
        "drill did not verify quarantine:\n{stdout}"
    );
}

/// A single shard-worker process on a fresh directory completes the
/// whole campaign by itself (claims every shard in turn) and leaves one
/// spec-fingerprinted journal per shard behind.
#[test]
fn lone_worker_process_completes_all_shards() {
    let dir = tmp_dir("lone");
    let out = Command::new(exe())
        .args([
            "shard-worker",
            "--dir",
            dir.to_str().unwrap(),
            "--shards",
            "2",
            "--worker-id",
            "lone",
            "--ttl-ms",
            "5000",
        ])
        .output()
        .expect("spawn shard worker");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(
        stdout.contains("claimed 2 shards, ran 24 seeds"),
        "{stdout}"
    );
    for k in 0..2 {
        let journal = dir.join(format!("shard-{k:04}.jsonl"));
        let text = std::fs::read_to_string(&journal).expect("shard journal missing");
        assert!(
            text.starts_with("{\"flame_campaign\":1,"),
            "journal lacks the spec fingerprint header"
        );
        assert_eq!(text.lines().count(), 1 + 12, "shard {k} journal incomplete");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `FLAME_SHARD_CRASH_AFTER` hard-aborts the worker process (no
/// unwinding, no lease release) after the given number of seeds — the
/// knob the drill uses to die deterministically mid-shard.
#[cfg(unix)]
#[test]
fn crash_after_knob_aborts_the_process() {
    use std::os::unix::process::ExitStatusExt;
    let dir = tmp_dir("abort");
    let out = Command::new(exe())
        .args([
            "shard-worker",
            "--dir",
            dir.to_str().unwrap(),
            "--shards",
            "2",
            "--worker-id",
            "doomed",
            "--ttl-ms",
            "60000",
        ])
        .env("FLAME_SHARD_CRASH_AFTER", "1")
        .output()
        .expect("spawn shard worker");
    assert!(!out.status.success());
    assert_eq!(
        out.status.signal(),
        Some(libc_sigabrt()),
        "worker should die by abort, got {:?}",
        out.status
    );
    // The journal holds exactly the seed fsynced before death, and the
    // unreleased lease still names the dead worker.
    let journal = std::fs::read_to_string(dir.join("shard-0000.jsonl")).unwrap();
    assert_eq!(journal.lines().count(), 1 + 1, "header + one record");
    let lease = std::fs::read_to_string(dir.join("shard-0000.lease")).unwrap();
    assert!(lease.contains("\"owner\":\"doomed\""), "{lease}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
fn libc_sigabrt() -> i32 {
    6
}
