//! # flame-compiler — the Flame compiler passes
//!
//! The software half of the Flame hardware/software co-design
//! (*Featherweight Soft Error Resilience for GPUs*, MICRO 2022): this
//! crate partitions GPU kernels into idempotent regions and prepares them
//! for one of the paper's resilience schemes.
//!
//! * [`regalloc`] — linear-scan register allocation (the paper hacks
//!   PTX-level allocation for the same purpose, §V-A);
//! * [`region`] — idempotent region formation: cutting memory
//!   anti-dependences and synchronization points with region boundaries;
//! * [`renaming`] — anti-dependent register renaming (Flame's choice);
//! * [`checkpoint`] — live-out register checkpointing (the Penny-style
//!   alternative);
//! * [`region_opt`] — the §III-E barrier-transparency optimization that
//!   extends region sizes;
//! * [`swapcodes`] / [`taildmr`] — SwapCodes instruction duplication and
//!   the tail-DMR hybrid, the competing detection schemes of §V-B;
//! * [`pipeline`] — per-scheme pass sequencing producing a
//!   [`pipeline::CompiledKernel`] ready to run on `gpu-sim`.
//!
//! ```
//! use flame_compiler::pipeline::{build, BuildOptions};
//! use gpu_sim::builder::KernelBuilder;
//! use gpu_sim::isa::{MemSpace, Special};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = KernelBuilder::new("axpy");
//! let tid = b.special(Special::TidX);
//! let a = b.imul(tid, 8);
//! let v = b.ld_arr(MemSpace::Global, 0, a, 0);
//! let w = b.iadd(v, 1);
//! b.st_arr(MemSpace::Global, 0, a, w, 0); // same array: WAR
//! b.exit();
//! let kernel = b.finish();
//!
//! let flame = build(&kernel, &BuildOptions::flame(63, 20))?;
//! assert!(flame.stats.regions >= 2); // the WAR was cut
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod checkpoint;
pub mod pipeline;
pub mod regalloc;
pub mod region;
pub mod region_opt;
pub mod renaming;
pub mod swapcodes;
pub mod taildmr;

pub use pipeline::{build, BuildOptions, CompiledKernel, Detection, Recovery};
