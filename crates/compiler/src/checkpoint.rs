//! Live-out register checkpointing (paper §II-C2, Figure 3b — the
//! Penny-style alternative to renaming).
//!
//! For every idempotent region whose execution overwrites one of its own
//! register inputs (an uncovered WAR), this pass stores that input's value
//! to a dedicated checkpoint slot in per-thread local memory *immediately
//! before the boundary that starts the region* — i.e. at the end of the
//! preceding region, so by the time the region can roll back, the
//! checkpoint is covered by region-level verification (the paper's
//! footnote 4 argument). Recovery restores the checkpointed registers and
//! re-executes the region; the restore lists are returned per boundary so
//! the runtime (flame-core's RPT) can attach them to recovery points.
//!
//! Only the actually anti-dependent registers are checkpointed — the
//! effect of Penny's "optimal checkpoint pruning".

use crate::analysis::{Layout, Pos};
use crate::region::regions_of;
use gpu_sim::isa::{Instruction, MemSpace, Opcode, Operand, Reg};
use gpu_sim::program::Kernel;
use std::collections::{HashMap, HashSet};

/// A checkpointed register and the local-memory slot its value is stored
/// to at the end of the preceding region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSlot {
    /// The anti-dependent region input being checkpointed.
    pub reg: Reg,
    /// Byte offset of the checkpoint slot in per-thread local memory.
    pub local_offset: u32,
}

/// Outcome of the checkpointing pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointResult {
    /// The rewritten kernel.
    pub kernel: Kernel,
    /// Restore list for each region, indexed by *boundary ordinal* (the
    /// i-th `RegionBoundary` in linear order starts region i+1 and has
    /// restore list `restores[i]`).
    pub restores: Vec<Vec<CheckpointSlot>>,
    /// Static checkpoint stores inserted.
    pub checkpoints: usize,
    /// Boundaries added to fix entry-region WARs.
    pub boundaries_added: usize,
}

/// Registers of `region` that are read before being overwritten within it
/// (its anti-dependent inputs).
fn antidep_inputs(k: &Kernel, layout: &Layout, region: &crate::region::Region) -> Vec<Reg> {
    let mut first_read: HashMap<Reg, Pos> = HashMap::new();
    let mut written: HashSet<Reg> = HashSet::new();
    let mut out = Vec::new();
    for &p in &region.insts {
        let (b, i) = layout.locate(p);
        let inst = &k.blocks[b.index()].insts[i];
        for r in inst.reads().collect::<Vec<_>>() {
            if !written.contains(&r) {
                first_read.entry(r).or_insert(p);
            }
        }
        if let Some(d) = inst.writes() {
            if first_read.contains_key(&d) && !written.contains(&d) && !out.contains(&d) {
                out.push(d);
            }
            // Predicated writes are partial: not WARAW covers.
            if inst.pred.is_none() || inst.op == Opcode::Bra {
                written.insert(d);
            }
        }
    }
    out
}

/// First position in `region` whose instruction overwrites a previously
/// read register (used to split the entry region).
fn first_war_write(k: &Kernel, layout: &Layout, region: &crate::region::Region) -> Option<Pos> {
    let mut first_read: HashMap<Reg, Pos> = HashMap::new();
    let mut written: HashSet<Reg> = HashSet::new();
    for &p in &region.insts {
        let (b, i) = layout.locate(p);
        let inst = &k.blocks[b.index()].insts[i];
        for r in inst.reads().collect::<Vec<_>>() {
            if !written.contains(&r) {
                first_read.entry(r).or_insert(p);
            }
        }
        if let Some(d) = inst.writes() {
            if first_read.contains_key(&d) && !written.contains(&d) {
                return Some(p);
            }
            if inst.pred.is_none() || inst.op == Opcode::Bra {
                written.insert(d);
            }
        }
    }
    None
}

/// Runs the checkpointing pass on a kernel with region boundaries.
pub fn checkpoint(kernel: &Kernel) -> CheckpointResult {
    let mut k = kernel.clone();
    let mut boundaries_added = 0;

    // The entry region has no preceding boundary to host checkpoints: cut
    // it at its first WAR write until it is WAR-free.
    loop {
        let layout = Layout::of(&k);
        let regions = regions_of(&k);
        let entry = &regions[0];
        match first_war_write(&k, &layout, entry) {
            Some(p) => {
                let (b, i) = layout.locate(p);
                k.blocks[b.index()]
                    .insts
                    .insert(i, Instruction::new(Opcode::RegionBoundary, None, vec![]));
                boundaries_added += 1;
            }
            None => break,
        }
    }

    // Checkpoint each region's anti-dependent inputs before its boundary.
    let layout = Layout::of(&k);
    let regions = regions_of(&k);
    let mut local_top = i64::from(k.local_mem_bytes);
    let mut restores: Vec<Vec<CheckpointSlot>> = Vec::with_capacity(regions.len() - 1);
    // (position of boundary, checkpoint stores to insert before it)
    let mut insertions: Vec<(Pos, Vec<Instruction>)> = Vec::new();
    let mut checkpoints = 0;
    for region in &regions[1..] {
        let bp = region.boundary.expect("non-entry region has a boundary");
        let inputs = antidep_inputs(&k, &layout, region);
        let mut list = Vec::with_capacity(inputs.len());
        let mut stores = Vec::with_capacity(inputs.len());
        for r in inputs {
            let slot = local_top;
            local_top += 8;
            let mut st = Instruction::new(
                Opcode::St(MemSpace::Local),
                None,
                vec![Operand::Imm(0), Operand::Reg(r)],
            );
            st.offset = slot;
            stores.push(st);
            list.push(CheckpointSlot {
                reg: r,
                local_offset: slot as u32,
            });
            checkpoints += 1;
        }
        restores.push(list);
        if !stores.is_empty() {
            insertions.push((bp, stores));
        }
    }
    k.local_mem_bytes = local_top as u32;
    // Apply insertions back-to-front so earlier positions stay valid.
    insertions.sort_by_key(|(p, _)| std::cmp::Reverse(*p));
    for (p, stores) in insertions {
        let (b, i) = layout.locate(p);
        let blk = &mut k.blocks[b.index()].insts;
        for st in stores.into_iter().rev() {
            blk.insert(i, st);
        }
    }
    k.recount_regs();
    CheckpointResult {
        kernel: k,
        restores,
        checkpoints,
        boundaries_added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate;
    use crate::region::{form_regions, Exemptions};
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::config::GpuConfig;
    use gpu_sim::gpu::Gpu;
    use gpu_sim::isa::{Cmp, Special};
    use gpu_sim::scheduler::SchedulerKind;
    use gpu_sim::sm::LaunchDims;

    fn run_output(kernel: &Kernel, threads: u32, words: u64) -> Vec<u64> {
        let mut gpu = Gpu::launch(
            GpuConfig::gtx480(),
            kernel.flatten(),
            LaunchDims::linear(1, threads),
            SchedulerKind::Gto,
        )
        .unwrap();
        gpu.run(10_000_000).unwrap();
        (0..words).map(|t| gpu.global().read(t * 8)).collect()
    }

    fn loop_kernel() -> Kernel {
        let mut b = KernelBuilder::new("loop");
        let tid = b.special(Special::TidX);
        let i = b.mov(0i64);
        let acc = b.mov(0i64);
        b.label("head");
        let acc2 = b.iadd(acc, i);
        b.mov_to(acc, acc2);
        let i2 = b.iadd(i, 1);
        b.mov_to(i, i2);
        let p = b.setp(Cmp::Lt, i, 10i64);
        b.bra_if(p, true, "head");
        let a = b.imul(tid, 8);
        b.st_arr(gpu_sim::isa::MemSpace::Global, 0, a, acc, 0);
        b.exit();
        b.finish()
    }

    #[test]
    fn checkpointing_preserves_semantics() {
        let k = loop_kernel();
        let alloc = allocate(&k, 8).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let before = run_output(&regioned, 32, 32);
        let res = checkpoint(&regioned);
        let after = run_output(&res.kernel, 32, 32);
        assert_eq!(before, after);
        assert_eq!(after[0], 45);
        // Loop-carried acc and i are anti-dependent inputs: checkpoints
        // must exist.
        assert!(res.checkpoints > 0);
    }

    #[test]
    fn restores_align_with_boundaries() {
        let k = loop_kernel();
        let alloc = allocate(&k, 8).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let res = checkpoint(&regioned);
        let n_boundaries = res
            .kernel
            .iter()
            .filter(|(_, _, i)| i.op == Opcode::RegionBoundary)
            .count();
        assert_eq!(res.restores.len(), n_boundaries);
        // The loop-body region restores at least one register.
        assert!(res.restores.iter().any(|l| !l.is_empty()));
        // Restore slots are within the kernel's local memory.
        for list in &res.restores {
            for r in list {
                assert!(r.local_offset < res.kernel.local_mem_bytes);
            }
        }
    }

    #[test]
    fn checkpoint_slots_are_distinct() {
        let k = loop_kernel();
        let alloc = allocate(&k, 8).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let res = checkpoint(&regioned);
        let mut seen = std::collections::HashSet::new();
        for list in &res.restores {
            for r in list {
                assert!(seen.insert(r.local_offset), "slot reused");
            }
        }
    }

    #[test]
    fn war_free_region_needs_no_checkpoints() {
        let mut b = KernelBuilder::new("pure");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_arr(gpu_sim::isa::MemSpace::Global, 0, a, 0);
        let w = b.iadd(v, 1);
        b.st_arr(gpu_sim::isa::MemSpace::Global, 1, a, w, 65536);
        b.exit();
        let k = b.finish();
        let alloc = allocate(&k, 63).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let res = checkpoint(&regioned);
        assert_eq!(res.checkpoints, 0);
        assert_eq!(res.boundaries_added, 0);
    }

    #[test]
    fn entry_region_war_gets_boundary() {
        // In well-formed kernels the entry region's inputs are undefined
        // (allocator-created reuse there is always WARAW-covered), so the
        // entry-region safety net only triggers on hand-built code that
        // reads an uninitialized register and later overwrites it.
        use gpu_sim::isa::{Instruction, Operand, Reg};
        use gpu_sim::program::BasicBlock;
        let mut k = Kernel::new("entry-war");
        let mut blk = BasicBlock::new("entry");
        // r1 = r0 + 1   (reads uninitialized r0)
        blk.insts.push(Instruction::new(
            Opcode::IAdd,
            Some(Reg(1)),
            vec![Operand::Reg(Reg(0)), Operand::Imm(1)],
        ));
        // r0 = 7        (overwrites the region input)
        blk.insts.push(Instruction::new(
            Opcode::Mov,
            Some(Reg(0)),
            vec![Operand::Imm(7)],
        ));
        blk.insts.push(Instruction::new(Opcode::Exit, None, vec![]));
        k.blocks.push(blk);
        k.recount_regs();
        let res = checkpoint(&k);
        assert!(res.boundaries_added > 0);
        // A second run finds nothing left to fix.
        let res2 = checkpoint(&res.kernel);
        assert_eq!(res2.boundaries_added, 0);
        assert_eq!(res2.checkpoints, 0);
    }

    #[test]
    fn checkpoint_stores_precede_their_boundary() {
        let k = loop_kernel();
        let alloc = allocate(&k, 8).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let res = checkpoint(&regioned);
        // Every boundary with a nonempty restore list must be directly
        // preceded by that many local stores.
        let flat: Vec<_> = res.kernel.iter().map(|(_, _, i)| i.clone()).collect();
        let mut ord = 0;
        for (i, inst) in flat.iter().enumerate() {
            if inst.op == Opcode::RegionBoundary {
                let need = res.restores[ord].len();
                for j in 0..need {
                    let st = &flat[i - 1 - j];
                    assert!(
                        matches!(st.op, Opcode::St(MemSpace::Local)),
                        "boundary {ord} missing checkpoint store"
                    );
                }
                ord += 1;
            }
        }
    }
}
