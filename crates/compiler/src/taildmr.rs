//! Tail-DMR hybrid detection (paper §V-B2, Figure 11).
//!
//! Tail-DMR avoids the WCDL verification delay differently from Flame: it
//! makes each idempotent region *self-verifying*. The head of the region
//! is covered by acoustic sensors (any error there is detected before the
//! region ends, because the tail lasts at least WCDL cycles); the tail is
//! covered by instruction duplication, which detects its errors
//! immediately. The price is the duplicated tail of every region.
//!
//! This pass selects, per region, the trailing instructions whose
//! duplicated execution spans roughly WCDL cycles and duplicates them via
//! the SwapCodes machinery.

use crate::analysis::Layout;
use crate::region::regions_of;
use crate::swapcodes::{duplicate_where, DupStats};
use gpu_sim::program::Kernel;
use std::collections::HashSet;

/// Applies tail-DMR to a kernel with region boundaries: the last
/// `ceil(wcdl / 2)` instructions of every region are duplicated, so the
/// post-DMR tail time is at least WCDL cycles (at ~1 instruction issued
/// per cycle, duplication doubles the tail's issue time).
pub fn tail_dmr(kernel: &Kernel, wcdl: u32, max_regs: u32) -> (Kernel, DupStats) {
    let tail_len = (wcdl as usize).div_ceil(2).max(1);
    let layout = Layout::of(kernel);
    let mut selected: HashSet<usize> = HashSet::new();
    for region in regions_of(kernel) {
        for &p in region.insts.iter().rev().take(tail_len) {
            selected.insert(p);
        }
    }
    // Positions are over the current kernel, matching duplicate_where's
    // linear counter.
    let _ = layout;
    duplicate_where(kernel, max_regs, |pos, _| selected.contains(&pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate;
    use crate::region::{form_regions, Exemptions};
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::config::GpuConfig;
    use gpu_sim::gpu::Gpu;
    use gpu_sim::isa::{MemSpace, Special};
    use gpu_sim::scheduler::SchedulerKind;
    use gpu_sim::sm::LaunchDims;

    fn long_kernel() -> Kernel {
        let mut b = KernelBuilder::new("long");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let mut v = b.ld_arr(MemSpace::Global, 0, a, 0);
        for i in 0..30 {
            v = b.iadd(v, i);
        }
        // Same-class store forces a mid-kernel boundary.
        b.st_arr(MemSpace::Global, 0, a, v, 0);
        let mut w = b.imul(v, 2);
        for i in 0..30 {
            w = b.iadd(w, i);
        }
        b.st_arr(MemSpace::Global, 1, a, w, 65536);
        b.exit();
        b.finish()
    }

    #[test]
    fn tail_dmr_duplicates_less_than_full_dmr() {
        let k = long_kernel();
        let alloc = allocate(&k, 63).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let (tail, tstats) = tail_dmr(&regioned, 20, 63);
        let (full, fstats) = crate::swapcodes::duplicate(&regioned, 63);
        assert!(tstats.duplicated > 0);
        assert!(tstats.duplicated + tstats.seeds < fstats.duplicated + fstats.seeds);
        assert!(tail.len() < full.len());
    }

    #[test]
    fn tail_scales_with_wcdl() {
        let k = long_kernel();
        let alloc = allocate(&k, 63).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let (_, s10) = tail_dmr(&regioned, 10, 63);
        let (_, s40) = tail_dmr(&regioned, 40, 63);
        assert!(
            s40.duplicated + s40.seeds > s10.duplicated + s10.seeds,
            "larger WCDL duplicates a longer tail"
        );
    }

    #[test]
    fn tail_dmr_preserves_semantics() {
        let k = long_kernel();
        let alloc = allocate(&k, 63).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let run = |k: &Kernel| {
            let mut gpu = Gpu::launch(
                GpuConfig::gtx480(),
                k.flatten(),
                LaunchDims::linear(1, 64),
                SchedulerKind::Gto,
            )
            .unwrap();
            for i in 0..64u64 {
                gpu.global_mut().write(i * 8, i * 7);
            }
            gpu.run(1_000_000).unwrap();
            (0..64u64)
                .map(|t| gpu.global().read(65536 + t * 8))
                .collect::<Vec<_>>()
        };
        let (tail, _) = tail_dmr(&regioned, 20, 63);
        assert_eq!(run(&regioned), run(&tail));
    }

    #[test]
    fn short_regions_fully_duplicated() {
        // A kernel whose regions are shorter than the tail window: every
        // compute instruction gets duplicated.
        let mut b = KernelBuilder::new("short");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        b.st_arr(MemSpace::Global, 0, a, v, 0); // boundary before store
        b.exit();
        let k = b.finish();
        let alloc = allocate(&k, 63).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let (tail, ts) = tail_dmr(&regioned, 40, 63);
        let (_, fs) = crate::swapcodes::duplicate(&regioned, 63);
        assert_eq!(ts.duplicated + ts.seeds, fs.duplicated + fs.seeds);
        assert!(tail.len() > regioned.len());
    }
}
