//! The idempotent-region-size extension optimization (paper §III-E).
//!
//! Barrier-induced region boundaries sometimes hide WARAW dependences and
//! shatter code into many small regions (the paper's LUD example, >10 %
//! overhead without the optimization). This pass conservatively detects
//! the paper's qualifying pattern within a straight-line code section:
//!
//! 1. a piece of shared memory (one alias class) is initialized before
//!    the barrier, and every following memory anti-dependence in the
//!    section is on that class;
//! 2. the section writes no other memory location.
//!
//! For such sections the barriers need no boundary and the class's WARs
//! are WARAW-covered by the initialization, so the whole section can form
//! a single extended idempotent region. Error propagation across the
//! transparent barrier stays within the thread block (shared memory is
//! CTA-private) and Flame's recovery rolls back all warps of the SM, so
//! recovery remains correct (§III-E3).

use crate::analysis::{is_linear_continuation, predecessors, Layout, Pos};
use crate::region::Exemptions;
use gpu_sim::isa::{BlockId, MemSpace, Opcode};
use gpu_sim::program::Kernel;

/// Statistics of the optimization detection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionOptStats {
    /// Barriers made transparent.
    pub transparent_barriers: usize,
    /// Qualifying sections found.
    pub sections: usize,
}

/// Detects qualifying sections and returns the corresponding exemptions
/// for [`crate::region::form_regions`].
pub fn detect(kernel: &Kernel) -> (Exemptions, RegionOptStats) {
    let layout = Layout::of(kernel);
    let preds = predecessors(kernel);
    let mut ex = Exemptions::none();
    let mut stats = RegionOptStats::default();

    // Maximal straight-line chains of blocks (linear continuations).
    let mut chains: Vec<(usize, usize)> = Vec::new(); // block index ranges
    let mut start = 0usize;
    for b in 1..=kernel.blocks.len() {
        let is_cont = b < kernel.blocks.len()
            && is_linear_continuation(kernel, &preds, BlockId(b as u32))
            && b != 0;
        if !is_cont {
            chains.push((start, b));
            start = b;
        }
    }

    for (b0, b1) in chains {
        let lo = layout.block_start[b0];
        let hi = if b1 < kernel.blocks.len() {
            layout.block_start[b1]
        } else {
            layout.len
        };
        let section: Vec<Pos> = (lo..hi).collect();
        if section.is_empty() {
            continue;
        }
        // Gather the section's barriers and memory accesses.
        let mut bars: Vec<Pos> = Vec::new();
        let mut store_class: Option<u16> = None;
        let mut loaded: std::collections::HashSet<u16> = std::collections::HashSet::new();
        let mut other_stores: Vec<u16> = Vec::new();
        let mut qualifies = true;
        let mut init_seen_before_bar = false;
        for &p in &section {
            let (bb, i) = layout.locate(p);
            let inst = &kernel.blocks[bb.index()].insts[i];
            match inst.op {
                Opcode::Bar => bars.push(p),
                Opcode::Atom(..) => {
                    qualifies = false;
                    break;
                }
                Opcode::Ld(_) => {
                    match inst.alias_class {
                        Some(c) => {
                            loaded.insert(c);
                        }
                        None => {
                            // An unclassified load may alias anything.
                            qualifies = false;
                            break;
                        }
                    }
                }
                Opcode::St(space) => {
                    if space == MemSpace::Shared {
                        match (store_class, inst.alias_class) {
                            (_, None) => {
                                qualifies = false;
                                break;
                            }
                            (None, Some(c)) => store_class = Some(c),
                            (Some(c0), Some(c)) if c0 != c => {
                                qualifies = false;
                                break;
                            }
                            _ => {}
                        }
                        if bars.is_empty() && inst.pred.is_none() {
                            init_seen_before_bar = true;
                        }
                    } else {
                        // Stores to other spaces are tolerated only when
                        // they are pure outputs: a class never loaded in
                        // the section (checked after the scan), so they
                        // create no anti-dependence.
                        match inst.alias_class {
                            Some(c) => other_stores.push(c),
                            None => {
                                qualifies = false;
                                break;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if !qualifies || bars.is_empty() || !init_seen_before_bar {
            continue;
        }
        let Some(class) = store_class else { continue };
        // Output-only stores must not read back in this section, and the
        // covered shared class must not also be written through another
        // class name.
        if other_stores
            .iter()
            .any(|c| loaded.contains(c) || *c == class)
        {
            continue;
        }
        stats.sections += 1;
        stats.transparent_barriers += bars.len();
        ex.transparent_barriers.extend(bars);
        ex.covered.push((lo..hi, class));
    }
    (ex, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{form_regions, region_stats};
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::isa::{AtomOp, Cmp, Special};

    /// The paper's Figure 10 pattern: init shared A[id]; barrier; compute
    /// from neighbours; store back to A.
    fn figure10(extra_global_store: bool, with_atomic: bool) -> Kernel {
        let mut b = KernelBuilder::new("fig10");
        let sh = b.alloc_shared(64 * 8);
        let tid = b.special(Special::TidX);
        let sa = b.imul(tid, 8);
        b.st_arr(MemSpace::Shared, 3, sa, tid, sh); // A[id] = init
        b.barrier();
        let n = b.iadd(tid, 1);
        let nw = b.irem(n, 64);
        let na = b.imul(nw, 8);
        let v = b.ld_arr(MemSpace::Shared, 3, na, sh); // A[neighbour]
        let w = b.iadd(v, 1);
        if with_atomic {
            let _ = b.atom(MemSpace::Shared, AtomOp::Add, sa, 1i64, sh);
        }
        if extra_global_store {
            let ga = b.imul(tid, 8);
            b.st_arr(MemSpace::Global, 9, ga, w, 0);
        }
        b.st_arr(MemSpace::Shared, 3, sa, w, sh); // A[id] = result (WAR)
        b.exit();
        b.finish()
    }

    #[test]
    fn qualifying_pattern_detected() {
        let k = figure10(false, false);
        let (ex, stats) = detect(&k);
        assert_eq!(stats.sections, 1);
        assert_eq!(stats.transparent_barriers, 1);
        assert_eq!(ex.covered.len(), 1);
    }

    #[test]
    fn optimization_removes_boundaries() {
        let k = figure10(false, false);
        let (ex, _) = detect(&k);
        let plain = form_regions(&k, &Exemptions::none());
        let opt = form_regions(&k, &ex);
        let sp = region_stats(&plain);
        let so = region_stats(&opt);
        assert!(so.boundaries < sp.boundaries);
        assert!(so.mean_size > sp.mean_size);
        // The fully qualifying kernel collapses to a single region.
        assert_eq!(so.boundaries, 0);
    }

    #[test]
    fn write_only_output_store_is_tolerated() {
        // A global store to a class never loaded in the section is a pure
        // output: no anti-dependence, so the section still qualifies.
        let k = figure10(true, false);
        let (_, stats) = detect(&k);
        assert_eq!(stats.sections, 1);
    }

    #[test]
    fn global_store_to_loaded_class_disqualifies() {
        // Reading the stored class back creates a non-shared WAR: the
        // section must not be extended.
        let mut b = KernelBuilder::new("rw");
        let sh = b.alloc_shared(64 * 8);
        let tid = b.special(Special::TidX);
        let sa = b.imul(tid, 8);
        b.st_arr(MemSpace::Shared, 3, sa, tid, sh);
        b.barrier();
        let v = b.ld_arr(MemSpace::Shared, 3, sa, sh);
        let ga = b.imul(tid, 8);
        let g = b.ld_arr(MemSpace::Global, 9, ga, 0);
        let w = b.iadd(v, g);
        b.st_arr(MemSpace::Global, 9, ga, w, 0);
        b.exit();
        let (_, stats) = detect(&b.finish());
        assert_eq!(stats.sections, 0);
    }

    #[test]
    fn predicated_init_does_not_count() {
        // The initializing store must dominate (be unpredicated).
        let mut b = KernelBuilder::new("pred-init");
        let sh = b.alloc_shared(64 * 8);
        let tid = b.special(Special::TidX);
        let sa = b.imul(tid, 8);
        let p = b.setp(Cmp::Lt, tid, 32i64);
        b.st_arr(MemSpace::Shared, 3, sa, tid, sh);
        b.pred_last(p, true);
        b.barrier();
        let v = b.ld_arr(MemSpace::Shared, 3, sa, sh);
        b.st_arr(MemSpace::Shared, 3, sa, v, sh);
        b.exit();
        let (_, stats) = detect(&b.finish());
        assert_eq!(stats.sections, 0);
    }

    #[test]
    fn atomic_disqualifies() {
        let k = figure10(false, true);
        let (_, stats) = detect(&k);
        assert_eq!(stats.sections, 0);
    }

    #[test]
    fn barrier_without_init_disqualifies() {
        // Barrier first, then stores: no initialization before the bar.
        let mut b = KernelBuilder::new("noinit");
        let sh = b.alloc_shared(64 * 8);
        let tid = b.special(Special::TidX);
        let sa = b.imul(tid, 8);
        b.barrier();
        b.st_arr(MemSpace::Shared, 3, sa, tid, sh);
        b.exit();
        let (_, stats) = detect(&b.finish());
        assert_eq!(stats.sections, 0);
    }

    #[test]
    fn mixed_shared_classes_disqualify() {
        let mut b = KernelBuilder::new("mixed");
        let sh = b.alloc_shared(64 * 8);
        let sh2 = b.alloc_shared(64 * 8);
        let tid = b.special(Special::TidX);
        let sa = b.imul(tid, 8);
        b.st_arr(MemSpace::Shared, 3, sa, tid, sh);
        b.barrier();
        b.st_arr(MemSpace::Shared, 4, sa, tid, sh2);
        b.exit();
        let (_, stats) = detect(&b.finish());
        assert_eq!(stats.sections, 0);
    }

    #[test]
    fn section_inside_loop_detected_per_iteration() {
        // The LUD shape: the init/bar/compute pattern inside a loop. The
        // loop header cuts the chain, but the body qualifies.
        let mut b = KernelBuilder::new("lud");
        let sh = b.alloc_shared(64 * 8);
        let tid = b.special(Special::TidX);
        let i = b.mov(0i64);
        b.label("head");
        let sa = b.imul(tid, 8);
        b.st_arr(MemSpace::Shared, 3, sa, i, sh);
        b.barrier();
        let n = b.iadd(tid, 1);
        let nw = b.irem(n, 64);
        let na = b.imul(nw, 8);
        let v = b.ld_arr(MemSpace::Shared, 3, na, sh);
        let w = b.iadd(v, 1);
        b.st_arr(MemSpace::Shared, 3, sa, w, sh);
        let i2 = b.iadd(i, 1);
        b.mov_to(i, i2);
        let p = b.setp(Cmp::Lt, i, 4i64);
        b.bra_if(p, true, "head");
        b.exit();
        let k = b.finish();
        let (ex, stats) = detect(&k);
        assert_eq!(stats.sections, 1);
        let plain = region_stats(&form_regions(&k, &Exemptions::none()));
        let opt = region_stats(&form_regions(&k, &ex));
        assert!(opt.boundaries < plain.boundaries);
        // The loop-header boundary must remain.
        assert!(opt.boundaries >= 1);
    }
}
