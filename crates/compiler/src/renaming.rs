//! Anti-dependent register renaming (paper §II-C2, Figure 3a — Flame's
//! chosen recovery-support scheme).
//!
//! Within each idempotent region, a register that is read and *later*
//! overwritten (an uncovered WAR) would change a region input, breaking
//! idempotent re-execution. This pass renames such defining writes to a
//! fresh physical register (rewriting the reached uses), consuming spare
//! registers from the architectural budget; when renaming is not provably
//! safe (the def's value merges with other defs, e.g. loop-carried
//! updates) or no register is spare, it falls back to cutting the WAR
//! with an extra region boundary.

use crate::analysis::{Layout, Liveness, Pos};
use crate::region::regions_of;
use gpu_sim::isa::{Instruction, Opcode, Reg};
use gpu_sim::program::Kernel;
use std::collections::{HashMap, HashSet};

/// Outcome of the renaming pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameStats {
    /// WARs resolved by renaming.
    pub renamed: usize,
    /// WARs resolved by inserting an extra boundary (unsafe to rename).
    pub boundaries_added: usize,
    /// Same-instruction WARs (`op d, d, ...`) resolved by splitting into a
    /// fresh-register write plus a copy-back.
    pub splits: usize,
    /// WAR writes sunk to their block end so several can share one
    /// boundary.
    pub sunk: usize,
    /// Fresh registers consumed.
    pub regs_added: usize,
    /// WARs left unresolved because the register budget was exhausted
    /// (recovery would be unsound; callers should treat nonzero as an
    /// error or re-allocate with headroom).
    pub unresolved: usize,
}

/// Runs register renaming on a kernel that already has region boundaries.
/// `max_regs` bounds the per-thread register budget.
///
/// Returns the rewritten kernel and statistics.
pub fn rename(kernel: &Kernel, max_regs: u32) -> (Kernel, RenameStats) {
    let mut k = kernel.clone();
    let mut stats = RenameStats::default();
    let mut next_reg = k
        .regs_per_thread
        .max(k.max_reg().map_or(0, |r| u32::from(r.0) + 1));

    // Iterate to a fixpoint. Each round collects every uncovered WAR and
    // applies ONE fix, preferring renames (free) over sinks (free, they
    // gather copy-backs so boundaries coalesce) over boundaries (which
    // cost a verification at runtime). The preference order matters:
    // renaming a reused temporary apart is often what makes a neighbouring
    // copy-back sinkable.
    loop {
        let layout = Layout::of(&k);
        let live = Liveness::of(&k);
        let regions = regions_of(&k);
        let preds = crate::analysis::predecessors(&k);
        let lincont: Vec<bool> = (0..k.blocks.len())
            .map(|b| {
                crate::analysis::is_linear_continuation(&k, &preds, gpu_sim::isa::BlockId(b as u32))
            })
            .collect();

        // Collect the round's WAR candidates.
        struct Cand {
            p: Pos,
            d: Reg,
            same_inst: bool,
            predicated: bool,
        }
        let mut cands: Vec<Cand> = Vec::new();
        for region in &regions {
            let mut first_read: HashMap<Reg, Pos> = HashMap::new();
            let mut written: HashSet<Reg> = HashSet::new();
            for &p in &region.insts {
                let (b, i) = layout.locate(p);
                let inst = &k.blocks[b.index()].insts[i];
                for r in inst.reads().collect::<Vec<_>>() {
                    if !written.contains(&r) {
                        first_read.entry(r).or_insert(p);
                    }
                }
                let predicated = inst.pred.is_some() && inst.op != Opcode::Bra;
                let Some(d) = inst.writes() else { continue };
                if first_read.contains_key(&d) && !written.contains(&d) {
                    cands.push(Cand {
                        p,
                        d,
                        same_inst: first_read[&d] == p,
                        predicated,
                    });
                }
                if !predicated {
                    written.insert(d);
                }
            }
        }
        if cands.is_empty() {
            break;
        }

        // 1) Rename any renameable WAR.
        let mut acted = false;
        for c in cands.iter().filter(|c| !c.same_inst && !c.predicated) {
            if next_reg >= max_regs {
                break;
            }
            if let Some(end_pos) = plan_rename(&k, &layout, &live, &lincont, c.p, c.d) {
                let fresh = Reg(next_reg as u16);
                next_reg += 1;
                stats.renamed += 1;
                stats.regs_added += 1;
                apply_rename(&mut k, &layout, c.p, end_pos, c.d, fresh);
                acted = true;
                break;
            }
        }
        // 2) Split a same-instruction WAR (`op d, d, ...`).
        if !acted {
            if let Some(c) = cands.iter().find(|c| c.same_inst) {
                if next_reg < max_regs {
                    let fresh = Reg(next_reg as u16);
                    next_reg += 1;
                    stats.splits += 1;
                    stats.regs_added += 1;
                    split_same_inst_war(&mut k, &layout, c.p, c.d, fresh);
                    acted = true;
                } else if cands.iter().all(|c| c.same_inst) {
                    // Out of registers with only same-instruction WARs
                    // left: nothing else can help.
                    stats.unresolved += cands.len();
                    break;
                }
            }
        }
        // 3) Sink a copy-back towards its block end.
        if !acted {
            for c in cands.iter().filter(|c| !c.same_inst) {
                if try_sink(&mut k, &layout, c.p, c.d) {
                    stats.sunk += 1;
                    acted = true;
                    break;
                }
            }
        }
        // 4) Cut the first remaining WAR with a boundary.
        if !acted {
            let c = cands.iter().find(|c| !c.same_inst).expect("non-split WAR");
            let (b, i) = layout.locate(c.p);
            k.blocks[b.index()]
                .insts
                .insert(i, Instruction::new(Opcode::RegionBoundary, None, vec![]));
            stats.boundaries_added += 1;
        }
    }
    k.recount_regs();
    (k, stats)
}

/// Decides whether the def of `d` at linear position `def_pos` can be
/// renamed: scans forward over the *linear chain* (region boundaries do
/// not break linearity — a renamed value may be consumed by a later
/// region of the same chain). Returns `Some(end_pos)` (exclusive linear
/// position up to which uses must be rewritten) when every reached use
/// lies within the scan, or `None` when the def may merge with other
/// defs (conditional flow out with `d` live, a predicated redefinition,
/// or `d` live past the end of the chain).
fn plan_rename(
    k: &Kernel,
    layout: &Layout,
    live: &Liveness,
    lincont: &[bool],
    def_pos: Pos,
    d: Reg,
) -> Option<Pos> {
    for q in def_pos + 1..layout.len {
        let (b, i) = layout.locate(q);
        // Crossing into a block that is not a linear continuation ends
        // the chain: the def flows there only if `d` is live in.
        if i == 0 && !lincont[b.index()] {
            return if live.live_in[b.index()].contains(&d) {
                None
            } else {
                Some(q)
            };
        }
        let inst = &k.blocks[b.index()].insts[i];
        if inst.op == Opcode::Bra {
            if let Some(t) = inst.target {
                if live.live_in[t.index()].contains(&d) {
                    return None;
                }
            }
            if inst.pred.is_none() {
                return Some(q + 1);
            }
        }
        if inst.op == Opcode::Exit {
            return Some(q + 1);
        }
        if inst.writes() == Some(d) {
            if inst.pred.is_some() {
                // A predicated redefinition merges the old value back in:
                // later reads see both defs, so renaming is unsafe.
                return None;
            }
            // Redefinition: rewrite reads up to and including this
            // instruction (its reads precede its write).
            return Some(q + 1);
        }
    }
    Some(layout.len)
}

/// Attempts to move the (computational, non-memory) instruction at `p` —
/// which writes `d` — to the end of its basic block, so that WAR-cutting
/// boundaries for several such writes coalesce into one. Safe only when
/// nothing in between reads or writes `d`, writes any of the
/// instruction's sources (including its predicate), and the instruction
/// is not already at the sink point. Returns whether it moved.
fn try_sink(k: &mut Kernel, layout: &Layout, p: Pos, d: Reg) -> bool {
    let (b, i) = layout.locate(p);
    let blk = &mut k.blocks[b.index()].insts;
    if blk[i].op.is_memory() || !blk[i].op.is_compute() {
        return false;
    }
    let term = blk
        .last()
        .filter(|t| matches!(t.op, Opcode::Bra | Opcode::Exit))
        .map_or(blk.len(), |_| blk.len() - 1);
    // The sink target is the start of the trailing group of already-sunk
    // writes (compute instructions whose destinations have no later
    // readers in the block). Stopping there keeps sinking idempotent —
    // group members never leapfrog each other.
    let mut gs = term;
    while gs > 0 {
        let inst = &blk[gs - 1];
        if !inst.op.is_compute() || inst.op.is_memory() {
            break;
        }
        let Some(dst) = inst.writes() else { break };
        if blk[gs..].iter().any(|j| j.reads().any(|r| r == dst)) {
            break;
        }
        gs -= 1;
    }
    if i + 1 >= gs {
        return false;
    }
    let srcs: Vec<Reg> = blk[i].reads().collect();
    for inst in &blk[i + 1..gs] {
        if inst.reads().any(|r| r == d)
            || inst.writes() == Some(d)
            || inst.writes().is_some_and(|w| srcs.contains(&w))
        {
            return false;
        }
    }
    let inst = blk.remove(i);
    blk.insert(gs - 1, inst);
    true
}

/// Rewrites `op d, d, ...` at position `p` into `op fresh, d, ...` with a
/// copy-back `mov d, fresh`, separating the read from the write so that a
/// boundary can cut the remaining WAR.
///
/// When `d` is not read or written again within `p`'s basic block, the
/// copy-back is *sunk to the end of the block* (before the terminator).
/// Loop bodies with several accumulators (`acc = acc + x`, `i = i + 1`,
/// ...) then need only one boundary before the whole group of copy-backs
/// — the "phi region" — instead of one per accumulator, matching how
/// little fragmentation the paper's renaming exhibits.
fn split_same_inst_war(k: &mut Kernel, layout: &Layout, p: Pos, d: Reg, fresh: Reg) {
    let (b, i) = layout.locate(p);
    let blk = &mut k.blocks[b.index()].insts;
    blk[i].dst = Some(fresh);
    let mut mv = Instruction::new(Opcode::Mov, Some(d), vec![fresh.into()]);
    mv.pred = blk[i].pred;
    // Find the sink point: end of block (before the terminator), unless
    // `d` is touched again in between.
    let term = blk
        .last()
        .filter(|t| matches!(t.op, Opcode::Bra | Opcode::Exit))
        .map_or(blk.len(), |_| blk.len() - 1);
    let touched = blk[i + 1..term]
        .iter()
        .any(|inst| inst.reads().any(|r| r == d) || inst.writes() == Some(d));
    let at = if touched { i + 1 } else { term };
    blk.insert(at, mv);
}

/// Renames the def at linear position `def_pos` to `fresh` and rewrites
/// the reads of `d` in `(def_pos, end_pos)`, stopping at a redefinition.
fn apply_rename(k: &mut Kernel, layout: &Layout, def_pos: Pos, end_pos: Pos, d: Reg, fresh: Reg) {
    {
        let (b, i) = layout.locate(def_pos);
        let inst = &mut k.blocks[b.index()].insts[i];
        debug_assert_eq!(inst.dst, Some(d));
        inst.dst = Some(fresh);
    }
    for q in def_pos + 1..end_pos.min(layout.len) {
        let (b, i) = layout.locate(q);
        let inst = &mut k.blocks[b.index()].insts[i];
        inst.rename_reads(d, fresh);
        if inst.writes() == Some(d) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate;
    use crate::region::{form_regions, Exemptions};
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::config::GpuConfig;
    use gpu_sim::gpu::Gpu;
    use gpu_sim::isa::{Cmp, MemSpace, Special};
    use gpu_sim::scheduler::SchedulerKind;
    use gpu_sim::sm::LaunchDims;

    fn run_output(kernel: &Kernel, threads: u32, words: u64) -> Vec<u64> {
        let mut gpu = Gpu::launch(
            GpuConfig::gtx480(),
            kernel.flatten(),
            LaunchDims::linear(1, threads),
            SchedulerKind::Gto,
        )
        .unwrap();
        gpu.run(10_000_000).unwrap();
        (0..words).map(|t| gpu.global().read(t * 8)).collect()
    }

    fn count_boundaries(k: &Kernel) -> usize {
        k.iter()
            .filter(|(_, _, i)| i.op == Opcode::RegionBoundary)
            .count()
    }

    /// Straight-line register reuse across a region boundary (the paper's
    /// Figure 2(b)/3(a) situation, reproduced via the allocator).
    fn figure2_kernel() -> Kernel {
        let mut b = KernelBuilder::new("fig2");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        // Region 1: compute x (dies late), load-store WAR forces a cut.
        let x = b.iadd(tid, 100); // long-lived value
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        b.st_arr(MemSpace::Global, 0, a, v, 0); // WAR -> boundary here
                                                // Region 2: x still read, then a new temp reuses x's register
                                                // once x dies (after allocation).
        let y = b.iadd(x, 1);
        b.st_arr(MemSpace::Global, 1, a, y, 65536);
        let z = b.imul(tid, 3); // fresh temp likely reusing a dead reg
        b.st_arr(MemSpace::Global, 1, a, z, 131_072);
        b.exit();
        b.finish()
    }

    #[test]
    fn renaming_preserves_semantics() {
        let k = figure2_kernel();
        let alloc = allocate(&k, 63).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let before = run_output(&regioned, 32, 32);
        let (renamed, _stats) = rename(&regioned, 63);
        let after = run_output(&renamed, 32, 32);
        assert_eq!(before, after);
    }

    #[test]
    fn renaming_resolves_straightline_war_without_boundaries() {
        // Force a WAR with a tiny register budget: temp reuse is
        // guaranteed when only a handful of registers exist.
        let k = figure2_kernel();
        let alloc = allocate(&k, 8).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let n_before = count_boundaries(&regioned);
        let (renamed, stats) = rename(&regioned, 16);
        // Whatever mix of rename/boundary was used, the result must be
        // WAR-free; verify by re-running the detector: a second pass must
        // be a no-op.
        let (again, stats2) = rename(&renamed, 16);
        assert_eq!(stats2, RenameStats::default());
        assert_eq!(again, renamed);
        assert!(stats.renamed + stats.boundaries_added > 0 || n_before == 0);
    }

    #[test]
    fn loop_carried_update_gets_boundary_not_rename() {
        // i = i + 1 in a loop: renaming cannot break the web; expect a
        // case-B boundary before the update move.
        let mut b = KernelBuilder::new("loop");
        let tid = b.special(Special::TidX);
        let i = b.mov(0i64);
        let acc = b.mov(0i64);
        b.label("head");
        let acc2 = b.iadd(acc, i);
        b.mov_to(acc, acc2);
        let i2 = b.iadd(i, 1);
        b.mov_to(i, i2);
        let p = b.setp(Cmp::Lt, i, 10i64);
        b.bra_if(p, true, "head");
        let a = b.imul(tid, 8);
        b.st_arr(MemSpace::Global, 0, a, acc, 0);
        b.exit();
        let k = b.finish();
        let alloc = allocate(&k, 8).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        let before = run_output(&regioned, 32, 32);
        let (renamed, stats) = rename(&regioned, 8);
        assert!(stats.boundaries_added > 0, "loop updates need boundaries");
        let after = run_output(&renamed, 32, 32);
        assert_eq!(before, after);
        assert_eq!(after[0], 45);
    }

    #[test]
    fn renaming_is_idempotent_across_workload_shapes() {
        for threads in [32u32, 64] {
            let k = figure2_kernel();
            let alloc = allocate(&k, 10).unwrap();
            let regioned = form_regions(&alloc.kernel, &Exemptions::none());
            let (renamed, _) = rename(&regioned, 20);
            let before = run_output(&regioned, threads, 32);
            let after = run_output(&renamed, threads, 32);
            assert_eq!(before, after);
        }
    }

    #[test]
    fn no_spare_registers_falls_back_to_boundaries() {
        let k = figure2_kernel();
        let alloc = allocate(&k, 8).unwrap();
        let regioned = form_regions(&alloc.kernel, &Exemptions::none());
        // Budget equal to current usage: no room to rename.
        let budget = regioned.regs_per_thread.max(alloc.regs_used);
        let (renamed, stats) = rename(&regioned, budget);
        assert_eq!(stats.renamed, 0);
        let before = run_output(&regioned, 32, 32);
        let after = run_output(&renamed, 32, 32);
        assert_eq!(before, after);
    }

    /// Property: after renaming, no region contains an uncovered register
    /// WAR (checked by the pass itself reporting no work on a second run).
    #[test]
    fn war_free_postcondition() {
        let kernels = [figure2_kernel()];
        for k in kernels {
            for budget in [8u32, 12, 63] {
                let alloc = allocate(&k, budget).unwrap();
                let regioned = form_regions(&alloc.kernel, &Exemptions::none());
                let (renamed, _) = rename(&regioned, budget + 8);
                let (_, stats2) = rename(&renamed, budget + 8);
                assert_eq!(stats2, RenameStats::default(), "budget {budget}");
            }
        }
    }
}
