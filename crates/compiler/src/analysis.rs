//! Dataflow analyses on kernels: linear positions, predecessors, liveness
//! and live intervals.
//!
//! These back the register allocator ([`crate::regalloc`]) and the
//! anti-dependence handling passes ([`crate::renaming`],
//! [`crate::checkpoint`]).

use gpu_sim::isa::{BlockId, Reg};
use gpu_sim::program::Kernel;
use std::collections::{HashMap, HashSet};

/// A linear program position: the index of an instruction in block order.
pub type Pos = usize;

/// Linearization of a kernel: maps `(block, index)` to [`Pos`] and back.
#[derive(Debug, Clone)]
pub struct Layout {
    /// First position of each block.
    pub block_start: Vec<Pos>,
    /// Number of instructions in each block.
    pub block_len: Vec<usize>,
    /// Total instructions.
    pub len: usize,
}

impl Layout {
    /// Computes the layout of `k`.
    pub fn of(k: &Kernel) -> Layout {
        let mut block_start = Vec::with_capacity(k.blocks.len());
        let mut block_len = Vec::with_capacity(k.blocks.len());
        let mut pos = 0;
        for b in &k.blocks {
            block_start.push(pos);
            block_len.push(b.insts.len());
            pos += b.insts.len();
        }
        Layout {
            block_start,
            block_len,
            len: pos,
        }
    }

    /// Position of instruction `idx` of `block`.
    pub fn pos(&self, block: BlockId, idx: usize) -> Pos {
        self.block_start[block.index()] + idx
    }

    /// Block and in-block index of `pos`.
    pub fn locate(&self, pos: Pos) -> (BlockId, usize) {
        let b = match self.block_start.binary_search(&pos) {
            Ok(i) => {
                // Could be the start of an empty block run; take the last
                // block starting here that is nonempty, or walk forward.
                let mut i = i;
                while self.block_len[i] == 0 && i + 1 < self.block_start.len() {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (BlockId(b as u32), pos - self.block_start[b])
    }

    /// Last position of `block` (its end, exclusive).
    pub fn block_end(&self, block: BlockId) -> Pos {
        self.block_start[block.index()] + self.block_len[block.index()]
    }
}

/// Predecessor lists of every block.
pub fn predecessors(k: &Kernel) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); k.blocks.len()];
    for b in 0..k.blocks.len() {
        for s in k.successors(BlockId(b as u32)) {
            preds[s.index()].push(BlockId(b as u32));
        }
    }
    preds
}

/// Whether `block`'s only predecessor is the linearly preceding block via
/// fall-through — the condition under which linear order equals execution
/// order and no region-entry boundary is required.
pub fn is_linear_continuation(k: &Kernel, preds: &[Vec<BlockId>], block: BlockId) -> bool {
    let b = block.index();
    if b == 0 {
        return preds[0].is_empty();
    }
    if preds[b].len() != 1 || preds[b][0].index() != b - 1 {
        return false;
    }
    // The predecessor must actually fall through (its terminator is a
    // conditional branch or absent).
    let prev = &k.blocks[b - 1];
    match prev.terminator() {
        None => true,
        Some(t) if t.op == gpu_sim::isa::Opcode::Bra && t.pred.is_some() => true,
        _ => false,
    }
}

/// Per-block liveness sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at the entry of each block.
    pub live_in: Vec<HashSet<Reg>>,
    /// Registers live at the exit of each block.
    pub live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Computes liveness by the standard backward fixpoint.
    pub fn of(k: &Kernel) -> Liveness {
        let n = k.blocks.len();
        // use[b]: read before written in b; def[b]: written in b.
        let mut use_b = vec![HashSet::new(); n];
        let mut def_b = vec![HashSet::new(); n];
        for (b, blk) in k.blocks.iter().enumerate() {
            for inst in &blk.insts {
                for r in inst.reads() {
                    if !def_b[b].contains(&r) {
                        use_b[b].insert(r);
                    }
                }
                if let Some(d) = inst.writes() {
                    def_b[b].insert(d);
                }
            }
        }
        let mut live_in = vec![HashSet::new(); n];
        let mut live_out = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let mut out: HashSet<Reg> = HashSet::new();
                for s in k.successors(BlockId(b as u32)) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn: HashSet<Reg> = use_b[b].clone();
                for &r in &out {
                    if !def_b[b].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Whether `r` is live immediately *after* position `pos` (used by the
    /// renaming pass to decide whether a rename scan can stop safely).
    ///
    /// Computed by a backward scan of the remainder of the block plus the
    /// block's live-out set.
    pub fn live_after(&self, k: &Kernel, layout: &Layout, pos: Pos, r: Reg) -> bool {
        let (block, idx) = layout.locate(pos);
        let blk = &k.blocks[block.index()];
        for inst in &blk.insts[idx + 1..] {
            if inst.reads().any(|x| x == r) {
                return true;
            }
            if inst.writes() == Some(r) {
                return false;
            }
        }
        self.live_out[block.index()].contains(&r)
    }
}

/// The live interval of a register: a conservative `[start, end]` span of
/// linear positions within which the register must keep its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// The register.
    pub reg: Reg,
    /// First position where the register is defined or live.
    pub start: Pos,
    /// Last position where the register is used or live.
    pub end: Pos,
}

/// Computes conservative live intervals for every register: instruction
/// defs/uses extended by block-boundary liveness (so loop-carried values
/// span their whole loop).
pub fn intervals(k: &Kernel, layout: &Layout, live: &Liveness) -> Vec<Interval> {
    let mut span: HashMap<Reg, (Pos, Pos)> = HashMap::new();
    let touch = |r: Reg, p: Pos, span: &mut HashMap<Reg, (Pos, Pos)>| {
        let e = span.entry(r).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    };
    for (b, blk) in k.blocks.iter().enumerate() {
        let start = layout.block_start[b];
        let end = layout.block_end(BlockId(b as u32)).saturating_sub(1);
        for &r in &live.live_in[b] {
            touch(r, start, &mut span);
        }
        for &r in &live.live_out[b] {
            touch(r, end, &mut span);
        }
        for (i, inst) in blk.insts.iter().enumerate() {
            let p = start + i;
            for r in inst.reads() {
                touch(r, p, &mut span);
            }
            if let Some(d) = inst.writes() {
                touch(d, p, &mut span);
            }
        }
    }
    let mut out: Vec<Interval> = span
        .into_iter()
        .map(|(reg, (start, end))| Interval { reg, start, end })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.reg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::isa::Cmp;

    fn loop_kernel() -> Kernel {
        // r_acc and r_i live across the loop; r_t is loop-local.
        let mut b = KernelBuilder::new("k");
        let acc = b.mov(0i64); // r0
        let i = b.mov(0i64); // r1
        b.label("head");
        let t = b.imul(i, 2); // r2
        let acc2 = b.iadd(acc, t); // r3
        b.mov_to(acc, acc2);
        let i2 = b.iadd(i, 1); // r4
        b.mov_to(i, i2);
        let p = b.setp(Cmp::Lt, i, 10i64); // r5
        b.bra_if(p, true, "head");
        b.st_global(0i64, acc, 0);
        b.exit();
        b.finish()
    }

    #[test]
    fn layout_roundtrip() {
        let k = loop_kernel();
        let layout = Layout::of(&k);
        assert_eq!(layout.len, k.len());
        for (b, i, _) in k.iter() {
            let p = layout.pos(b, i);
            assert_eq!(layout.locate(p), (b, i));
        }
    }

    #[test]
    fn predecessors_of_loop() {
        let k = loop_kernel();
        let preds = predecessors(&k);
        // The loop head has two predecessors: entry and the backedge.
        let head = k
            .blocks
            .iter()
            .position(|b| b.label == "head")
            .expect("head block");
        assert_eq!(preds[head].len(), 2);
    }

    #[test]
    fn linear_continuation_detection() {
        let k = loop_kernel();
        let preds = predecessors(&k);
        let head = k.blocks.iter().position(|b| b.label == "head").unwrap();
        // Loop head: two preds -> not a linear continuation.
        assert!(!is_linear_continuation(&k, &preds, BlockId(head as u32)));
        // Block after the conditional backedge: single fall-through pred.
        assert!(is_linear_continuation(&k, &preds, BlockId(head as u32 + 1)));
        // Entry block with no preds is a linear continuation.
        assert!(is_linear_continuation(&k, &preds, BlockId(0)));
    }

    #[test]
    fn liveness_tracks_loop_carried_values() {
        let k = loop_kernel();
        let live = Liveness::of(&k);
        let head = k.blocks.iter().position(|b| b.label == "head").unwrap();
        // acc (r0) and i (r1) are live into the loop head.
        assert!(live.live_in[head].contains(&Reg(0)));
        assert!(live.live_in[head].contains(&Reg(1)));
        // The loop-local temporary r2 is not.
        assert!(!live.live_in[head].contains(&Reg(2)));
    }

    #[test]
    fn intervals_span_loops() {
        let k = loop_kernel();
        let layout = Layout::of(&k);
        let live = Liveness::of(&k);
        let ivs = intervals(&k, &layout, &live);
        let find = |r: Reg| ivs.iter().find(|iv| iv.reg == r).copied().unwrap();
        let head = k.blocks.iter().position(|b| b.label == "head").unwrap();
        let loop_end = layout.block_end(BlockId(head as u32)) - 1;
        // acc's interval covers the whole loop and its use in the store.
        let acc = find(Reg(0));
        assert!(acc.start <= layout.block_start[head]);
        assert!(acc.end > loop_end);
        // The loop-local temp is contained within the loop body.
        let t = find(Reg(2));
        assert!(t.start >= layout.block_start[head]);
        assert!(t.end <= loop_end);
    }

    #[test]
    fn intervals_sorted_by_start() {
        let k = loop_kernel();
        let layout = Layout::of(&k);
        let live = Liveness::of(&k);
        let ivs = intervals(&k, &layout, &live);
        for w in ivs.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn live_after_respects_redefinition() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(1i64); // r0
        let _y = b.iadd(x, 2); // r1 reads r0
        b.mov_to(x, 5i64); // redefines r0
        b.st_global(0i64, x, 0);
        b.exit();
        let k = b.finish();
        let layout = Layout::of(&k);
        let live = Liveness::of(&k);
        // After pos 0 (mov r0), r0 is live (read at pos 1).
        assert!(live.live_after(&k, &layout, 0, Reg(0)));
        // After pos 1 (iadd), r0 is redefined before any use: dead.
        assert!(!live.live_after(&k, &layout, 1, Reg(0)));
    }
}
