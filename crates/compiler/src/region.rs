//! Idempotent region formation (paper §II-C, §III-A).
//!
//! A region of code is idempotent if re-executing it with its inputs
//! preserved produces the same result — which holds exactly when the
//! region contains no uncovered anti-dependence (WAR) on memory. This
//! pass partitions a register-allocated kernel into regions by inserting
//! [`Opcode::RegionBoundary`] pseudo-instructions:
//!
//! * at every block entry where linear order does not equal execution
//!   order (joins, loop headers, branch targets) — so that each region is
//!   a straight-line chain entered only at its top;
//! * before every barrier and around every atomic (synchronization-level
//!   error containment, §III-E1) — unless the barrier was proven
//!   *transparent* by the region-extension optimization (§III-E2);
//! * before any store that may alias an earlier in-region load without a
//!   covering earlier write (the WAR / WARAW analysis of Figure 2).
//!
//! Register anti-dependences are left to the renaming
//! ([`crate::renaming`]) or checkpointing ([`crate::checkpoint`]) passes.

use crate::analysis::{is_linear_continuation, predecessors, Layout, Pos};
use gpu_sim::isa::{Instruction, MemSpace, Opcode, Operand, Reg};
use gpu_sim::program::Kernel;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::Range;

/// Exemptions produced by the region-extension optimization
/// ([`crate::region_opt`]): barriers that need no boundary and alias
/// classes whose WARs are WARAW-covered within a section.
#[derive(Debug, Clone, Default)]
pub struct Exemptions {
    /// Linear positions (in the pre-boundary kernel) of `Bar` instructions
    /// that do not induce a region boundary.
    pub transparent_barriers: HashSet<Pos>,
    /// `(section, class)`: within `section`, WARs on alias class `class`
    /// are covered by the section's initializing writes.
    pub covered: Vec<(Range<Pos>, u16)>,
}

impl Exemptions {
    /// No exemptions (the unoptimized region formation).
    pub fn none() -> Exemptions {
        Exemptions::default()
    }

    fn covers(&self, pos: Pos, class: Option<u16>) -> bool {
        let Some(c) = class else { return false };
        self.covered
            .iter()
            .any(|(r, rc)| *rc == c && r.contains(&pos))
    }
}

/// The memory-address key used by the conservative alias analysis: a base
/// (register + SSA-ish version, or constant) plus a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AddrKey {
    base: BaseKey,
    offset: i64,
    space: MemSpace,
    class: Option<u16>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BaseKey {
    /// Base register and its definition version at the access.
    Reg(Reg, u32),
    /// Constant base address.
    Const(i64),
    /// Unanalyzable base (special register operand).
    Unknown,
}

/// May the two accesses touch the same location?
///
/// Idempotence must hold at *warp* granularity (recovery re-executes whole
/// warps), so two accesses through the same lane-varying base register
/// with different offsets may still collide across lanes — lane `i`'s
/// store to `A[tid+1]` hits lane `i+1`'s load of `A[tid]` (the paper's
/// Figure 2(a)). Only distinct alias classes or distinct constant
/// (warp-uniform) addresses are provably disjoint.
fn may_alias(a: &AddrKey, b: &AddrKey) -> bool {
    if a.space != b.space {
        return false;
    }
    if let (Some(ca), Some(cb)) = (a.class, b.class) {
        if ca != cb {
            return false;
        }
    }
    match (a.base, b.base) {
        (BaseKey::Const(c1), BaseKey::Const(c2)) => c1 + a.offset == c2 + b.offset,
        _ => true,
    }
}

/// Do the two accesses *definitely* touch the same location?
fn must_alias(a: &AddrKey, b: &AddrKey) -> bool {
    if a.space != b.space {
        return false;
    }
    match (a.base, b.base) {
        (BaseKey::Reg(r1, v1), BaseKey::Reg(r2, v2)) => {
            r1 == r2 && v1 == v2 && a.offset == b.offset
        }
        (BaseKey::Const(c1), BaseKey::Const(c2)) => c1 + a.offset == c2 + b.offset,
        _ => false,
    }
}

fn addr_key(inst: &Instruction, versions: &HashMap<Reg, u32>) -> AddrKey {
    let space = match inst.op {
        Opcode::Ld(s) | Opcode::St(s) | Opcode::Atom(s, _) => s,
        _ => unreachable!("addr_key on non-memory instruction"),
    };
    let base = match inst.srcs.first() {
        Some(Operand::Reg(r)) => BaseKey::Reg(*r, *versions.get(r).unwrap_or(&0)),
        Some(Operand::Imm(v)) => BaseKey::Const(*v),
        _ => BaseKey::Unknown,
    };
    AddrKey {
        base,
        offset: inst.offset,
        space,
        class: inst.alias_class,
    }
}

/// Inserts idempotent region boundaries into an allocated kernel.
///
/// The input must be register-allocated (physical registers); the output
/// contains [`Opcode::RegionBoundary`] instructions and is otherwise
/// semantically identical.
pub fn form_regions(kernel: &Kernel, ex: &Exemptions) -> Kernel {
    let layout = Layout::of(kernel);
    let preds = predecessors(kernel);

    // Positions (in the original kernel) before which a boundary goes.
    let mut boundaries: BTreeSet<Pos> = BTreeSet::new();

    // 1. Region-entry boundaries at non-linear block entries.
    for b in 0..kernel.blocks.len() {
        let id = gpu_sim::isa::BlockId(b as u32);
        if !is_linear_continuation(kernel, &preds, id) && layout.block_len[b] > 0 {
            boundaries.insert(layout.block_start[b]);
        }
    }

    // 2. Synchronization boundaries: before every barrier (unless
    //    transparent) and around every atomic.
    for (b, i, inst) in kernel.iter() {
        let p = layout.pos(b, i);
        match inst.op {
            Opcode::Bar if !ex.transparent_barriers.contains(&p) => {
                boundaries.insert(p);
            }
            Opcode::Atom(..) => {
                boundaries.insert(p);
                if p + 1 < layout.len {
                    boundaries.insert(p + 1);
                }
            }
            _ => {}
        }
    }

    // 3. Memory anti-dependence scan: a single forward pass over the
    //    linear program, resetting tracked reads at each boundary.
    let mut versions: HashMap<Reg, u32> = HashMap::new();
    let mut reads: Vec<(AddrKey, Pos)> = Vec::new();
    let mut writes: Vec<AddrKey> = Vec::new();
    for (b, i, inst) in kernel.iter() {
        let p = layout.pos(b, i);
        if boundaries.contains(&p) {
            reads.clear();
            writes.clear();
        }
        match inst.op {
            Opcode::Ld(_) => {
                reads.push((addr_key(inst, &versions), p));
            }
            Opcode::St(_) => {
                let key = addr_key(inst, &versions);
                let war = reads.iter().any(|(rk, rp)| {
                    may_alias(&key, rk)
                        && !(ex.covers(p, key.class) && ex.covers(*rp, rk.class))
                        && !writes.iter().any(|wk| must_alias(wk, rk))
                });
                if war {
                    boundaries.insert(p);
                    reads.clear();
                    writes.clear();
                }
                // A predicated store writes only some lanes and cannot
                // serve as a WARAW cover.
                if inst.pred.is_none() {
                    writes.push(addr_key(inst, &versions));
                }
            }
            // Atomics are isolated by boundaries already.
            _ => {}
        }
        if let Some(d) = inst.writes() {
            *versions.entry(d).or_insert(0) += 1;
        }
    }

    insert_boundaries(kernel, &layout, &boundaries)
}

/// Materializes `RegionBoundary` instructions before the given positions.
fn insert_boundaries(kernel: &Kernel, layout: &Layout, boundaries: &BTreeSet<Pos>) -> Kernel {
    let mut out = kernel.clone();
    for &p in boundaries.iter().rev() {
        let (b, i) = layout.locate(p);
        out.blocks[b.index()]
            .insts
            .insert(i, Instruction::new(Opcode::RegionBoundary, None, vec![]));
    }
    out
}

/// A region: the linear positions of its instructions (boundary
/// pseudo-instructions excluded), in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Index of the region in linear order.
    pub index: usize,
    /// Linear position of the `RegionBoundary` instruction that starts
    /// this region, or `None` for the kernel-entry region.
    pub boundary: Option<Pos>,
    /// Positions of the region's instructions.
    pub insts: Vec<Pos>,
}

/// Enumerates the regions of a kernel that already contains boundary
/// instructions.
pub fn regions_of(kernel: &Kernel) -> Vec<Region> {
    let layout = Layout::of(kernel);
    let mut out = Vec::new();
    let mut cur = Region {
        index: 0,
        boundary: None,
        insts: Vec::new(),
    };
    for (b, i, inst) in kernel.iter() {
        let p = layout.pos(b, i);
        if inst.op == Opcode::RegionBoundary {
            out.push(cur);
            cur = Region {
                index: out.len(),
                boundary: Some(p),
                insts: Vec::new(),
            };
        } else {
            cur.insts.push(p);
        }
    }
    out.push(cur);
    out
}

/// Summary statistics of a region partitioning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionStats {
    /// Number of regions (boundaries + 1).
    pub regions: usize,
    /// Number of boundary instructions.
    pub boundaries: usize,
    /// Mean region size in (static) instructions.
    pub mean_size: f64,
    /// Largest region size.
    pub max_size: usize,
}

/// Computes [`RegionStats`] for a kernel with boundaries.
pub fn region_stats(kernel: &Kernel) -> RegionStats {
    let regs = regions_of(kernel);
    let sizes: Vec<usize> = regs.iter().map(|r| r.insts.len()).collect();
    let total: usize = sizes.iter().sum();
    RegionStats {
        regions: regs.len(),
        boundaries: regs.len() - 1,
        mean_size: if regs.is_empty() {
            0.0
        } else {
            total as f64 / regs.len() as f64
        },
        max_size: sizes.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::isa::{AtomOp, Cmp, Special};

    fn count_boundaries(k: &Kernel) -> usize {
        k.iter()
            .filter(|(_, _, i)| i.op == Opcode::RegionBoundary)
            .count()
    }

    #[test]
    fn straight_line_no_war_has_no_boundaries() {
        let mut b = KernelBuilder::new("k");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        let w = b.iadd(v, 1);
        b.st_arr(MemSpace::Global, 1, a, w, 4096);
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k), 0);
    }

    #[test]
    fn store_after_load_same_array_gets_boundary() {
        // Figure 2(a): ld A[tid]; st A[tid+1] — same class, may alias.
        let mut b = KernelBuilder::new("k");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        let w = b.iadd(v, 1);
        b.st_arr(MemSpace::Global, 0, a, w, 8);
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k), 1);
        // The boundary sits immediately before the store.
        let insts = &k.blocks[0].insts;
        let bpos = insts
            .iter()
            .position(|i| i.op == Opcode::RegionBoundary)
            .unwrap();
        assert!(matches!(insts[bpos + 1].op, Opcode::St(_)));
    }

    #[test]
    fn store_to_same_address_is_waraw_covered() {
        // st A[tid]; ld A[tid]; st A[tid] — the WAR (ld, 2nd st) is
        // covered by the first write (WARAW): idempotent, no boundary.
        let mut b = KernelBuilder::new("k");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        b.st_arr(MemSpace::Global, 0, a, 5i64, 0);
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        let w = b.iadd(v, 1);
        b.st_arr(MemSpace::Global, 0, a, w, 0);
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k), 0);
    }

    #[test]
    fn cross_lane_offsets_on_same_base_alias() {
        // ld A[tid]; st A[tid+8B]: lane i's store hits lane i+1's loaded
        // address — a warp-level WAR, so a boundary is required even
        // though per-thread addresses differ.
        let mut b2 = KernelBuilder::new("k2");
        let tid = b2.special(Special::TidX);
        let a = b2.imul(tid, 8);
        let v = b2.ld_arr(MemSpace::Global, 0, a, 0);
        b2.st_arr(MemSpace::Global, 0, a, v, 8);
        b2.exit();
        let k2 = form_regions(&b2.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k2), 1);
    }

    #[test]
    fn distinct_constant_addresses_do_not_alias() {
        let mut b = KernelBuilder::new("k");
        let v = b.ld_arr(MemSpace::Global, 0, 64i64, 0);
        b.st_arr(MemSpace::Global, 0, 128i64, v, 0);
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k), 0);
        // Same constant address: WAR.
        let mut b2 = KernelBuilder::new("k2");
        let v = b2.ld_arr(MemSpace::Global, 0, 64i64, 0);
        let w = b2.iadd(v, 1);
        b2.st_arr(MemSpace::Global, 0, 64i64, w, 0);
        b2.exit();
        let k2 = form_regions(&b2.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k2), 1);
    }

    #[test]
    fn different_classes_never_alias() {
        let mut b = KernelBuilder::new("k");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        // Unknown-base store, but distinct class: no alias.
        let other = b.iadd(a, 1024i64);
        b.st_arr(MemSpace::Global, 1, other, v, 0);
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k), 0);
    }

    #[test]
    fn unclassified_store_conservatively_aliases() {
        let mut b = KernelBuilder::new("k");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_global(a, 0); // no class
        let other = b.iadd(a, 1024i64);
        b.st_global(other, v, 0); // no class, different base
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k), 1);
    }

    #[test]
    fn barriers_and_loop_headers_get_boundaries() {
        let mut b = KernelBuilder::new("k");
        let sh = b.alloc_shared(256);
        let tid = b.special(Special::TidX);
        let sa = b.imul(tid, 8);
        b.st_arr(MemSpace::Shared, 0, sa, tid, sh);
        b.barrier();
        let i = b.mov(0i64);
        b.label("head");
        let i2 = b.iadd(i, 1);
        b.mov_to(i, i2);
        let p = b.setp(Cmp::Lt, i, 4i64);
        b.bra_if(p, true, "head");
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        // One boundary before the barrier, one at the loop head.
        assert!(count_boundaries(&k) >= 2);
        let regs = regions_of(&k);
        assert!(regs.len() >= 3);
    }

    #[test]
    fn atomics_are_isolated() {
        let mut b = KernelBuilder::new("k");
        let tid = b.special(Special::TidX);
        let _old = b.atom(MemSpace::Global, AtomOp::Add, 0i64, tid, 0);
        let _x = b.iadd(tid, 1);
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        // Boundary before and after the atomic.
        assert_eq!(count_boundaries(&k), 2);
        let regs = regions_of(&k);
        // Region 1 holds exactly the atomic.
        let atom_region = &regs[1];
        assert_eq!(atom_region.insts.len(), 1);
    }

    #[test]
    fn transparent_barrier_is_skipped() {
        let mut b = KernelBuilder::new("k");
        let sh = b.alloc_shared(256);
        let tid = b.special(Special::TidX);
        let sa = b.imul(tid, 8);
        b.st_arr(MemSpace::Shared, 7, sa, tid, sh);
        b.barrier();
        let v = b.ld_arr(MemSpace::Shared, 7, sa, sh + 8);
        b.st_arr(MemSpace::Shared, 7, sa, v, sh);
        b.exit();
        let plain = form_regions(&b.finish(), &Exemptions::none());
        // Without the optimization: boundary at Bar + WAR boundary.
        assert_eq!(count_boundaries(&plain), 2);

        // With the barrier transparent and class 7 covered: none.
        let mut b2 = KernelBuilder::new("k");
        let sh = b2.alloc_shared(256);
        let tid = b2.special(Special::TidX);
        let sa = b2.imul(tid, 8);
        b2.st_arr(MemSpace::Shared, 7, sa, tid, sh);
        b2.barrier();
        let v = b2.ld_arr(MemSpace::Shared, 7, sa, sh + 8);
        b2.st_arr(MemSpace::Shared, 7, sa, v, sh);
        b2.exit();
        let k2 = b2.finish();
        let bar_pos = {
            let layout = Layout::of(&k2);
            k2.iter()
                .find(|(_, _, i)| i.op == Opcode::Bar)
                .map(|(b, i, _)| layout.pos(b, i))
                .unwrap()
        };
        let ex = Exemptions {
            transparent_barriers: [bar_pos].into_iter().collect(),
            covered: vec![(0..k2.len(), 7)],
        };
        let opt = form_regions(&k2, &ex);
        assert_eq!(count_boundaries(&opt), 0);
    }

    #[test]
    fn spill_slot_war_is_cut() {
        use gpu_sim::isa::{Instruction, Opcode, Operand, Reg};
        // Hand-build: ld.local r0, [0]; st.local [0], r1 — WAR on the
        // spill slot must be cut.
        let mut k = Kernel::new("spill");
        let mut blk = gpu_sim::program::BasicBlock::new("entry");
        let mut ld = Instruction::new(
            Opcode::Ld(MemSpace::Local),
            Some(Reg(0)),
            vec![Operand::Imm(0)],
        );
        ld.offset = 0;
        blk.insts.push(ld);
        let mut st = Instruction::new(
            Opcode::St(MemSpace::Local),
            None,
            vec![Operand::Imm(0), Operand::Reg(Reg(1))],
        );
        st.offset = 0;
        blk.insts.push(st);
        blk.insts.push(Instruction::new(Opcode::Exit, None, vec![]));
        k.blocks.push(blk);
        k.recount_regs();
        let out = form_regions(&k, &Exemptions::none());
        assert_eq!(count_boundaries(&out), 1);
        // Different slots: no WAR.
        let mut k2 = k.clone();
        k2.blocks[0].insts[1].offset = 8;
        let out2 = form_regions(&k2, &Exemptions::none());
        assert_eq!(count_boundaries(&out2), 0);
    }

    #[test]
    fn base_register_redefinition_invalidates_must_alias() {
        // a = tid*8; ld A[a]; a = a + 8; st A[a] — after redefinition the
        // analysis cannot prove distinctness: boundary expected.
        let mut b = KernelBuilder::new("k");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        let a2 = b.iadd(a, 8);
        b.mov_to(a, a2);
        b.st_arr(MemSpace::Global, 0, a, v, 0);
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        assert_eq!(count_boundaries(&k), 1);
    }

    #[test]
    fn region_stats_reports_sizes() {
        let mut b = KernelBuilder::new("k");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        b.st_arr(MemSpace::Global, 0, a, v, 0);
        b.exit();
        let k = form_regions(&b.finish(), &Exemptions::none());
        let st = region_stats(&k);
        assert_eq!(st.boundaries, 1);
        assert_eq!(st.regions, 2);
        assert!(st.mean_size > 0.0);
        assert!(st.max_size >= 2);
    }

    #[test]
    fn regions_of_enumerates_in_order() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(1i64);
        b.region_boundary();
        let _y = b.iadd(x, 1);
        b.region_boundary();
        b.exit();
        let k = b.finish();
        let regs = regions_of(&k);
        assert_eq!(regs.len(), 3);
        assert_eq!(regs[0].boundary, None);
        assert_eq!(regs[0].insts.len(), 1);
        assert_eq!(regs[1].insts.len(), 1);
        assert_eq!(regs[2].insts.len(), 1); // exit
        assert_eq!(regs[1].boundary, Some(1));
    }
}
