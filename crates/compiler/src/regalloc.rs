//! Linear-scan register allocation.
//!
//! Kernels are authored with unbounded virtual registers (crate
//! `gpu-sim`'s builder); this pass maps them onto the architectural
//! register budget, spilling to per-thread local memory when necessary.
//!
//! Register allocation is what *creates* register anti-dependences
//! (physical register reuse), which the paper's renaming/checkpointing
//! schemes must then resolve — exactly the situation of its PTX-level
//! register-allocation methodology (§V-A).

use crate::analysis::{intervals, Interval, Layout, Liveness};
use gpu_sim::isa::{Instruction, MemSpace, Opcode, Operand, Reg};
use gpu_sim::program::Kernel;
use std::collections::HashMap;
use std::fmt;

/// Result of register allocation.
#[derive(Debug, Clone)]
pub struct AllocResult {
    /// The rewritten kernel (physical registers, spill code inserted).
    pub kernel: Kernel,
    /// Physical registers used per thread.
    pub regs_used: u32,
    /// Number of virtual registers spilled to local memory.
    pub spilled: usize,
}

/// Error returned when a kernel cannot be allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// The register budget that proved insufficient.
    pub budget: u32,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot allocate kernel within {} registers per thread",
            self.budget
        )
    }
}

impl std::error::Error for AllocError {}

/// Number of registers reserved for spill-code scratch values (an
/// instruction can need up to three source reloads plus a predicate).
const SCRATCH_REGS: u32 = 4;

/// Allocates `kernel` (virtual registers) onto at most `max_regs`
/// physical registers per thread.
///
/// # Errors
///
/// Returns [`AllocError`] if even with spilling the kernel cannot fit
/// (fewer than `SCRATCH_REGS + 1` registers available).
pub fn allocate(kernel: &Kernel, max_regs: u32) -> Result<AllocResult, AllocError> {
    // First try without reserving scratch registers; if anything spills,
    // redo with scratch registers reserved at the top of the budget.
    match try_allocate(kernel, max_regs, false) {
        Some(r) => Ok(r),
        None => {
            if max_regs <= SCRATCH_REGS + 1 {
                return Err(AllocError { budget: max_regs });
            }
            try_allocate(kernel, max_regs, true).ok_or(AllocError { budget: max_regs })
        }
    }
}

fn try_allocate(kernel: &Kernel, max_regs: u32, with_spills: bool) -> Option<AllocResult> {
    let layout = Layout::of(kernel);
    let live = Liveness::of(kernel);
    let ivs = intervals(kernel, &layout, &live);
    let budget = if with_spills {
        max_regs - SCRATCH_REGS
    } else {
        max_regs
    };

    let mut free: Vec<u16> = (0..budget as u16).rev().collect();
    let mut active: Vec<Interval> = Vec::new(); // sorted by end asc
    let mut assign: HashMap<Reg, u16> = HashMap::new();
    let mut spills: Vec<Reg> = Vec::new();

    for iv in &ivs {
        // Expire intervals that ended strictly before this start.
        let mut i = 0;
        while i < active.len() {
            if active[i].end < iv.start {
                let done = active.remove(i);
                free.push(assign[&done.reg]);
            } else {
                i += 1;
            }
        }
        if let Some(r) = free.pop() {
            assign.insert(iv.reg, r);
            let at = active.partition_point(|a| a.end <= iv.end);
            active.insert(at, *iv);
        } else if !with_spills {
            return None;
        } else {
            // Spill the interval with the furthest end (classic
            // linear-scan heuristic).
            let last = active.last().copied();
            match last {
                Some(victim) if victim.end > iv.end => {
                    active.pop();
                    let r = assign.remove(&victim.reg).expect("victim was assigned");
                    spills.push(victim.reg);
                    assign.insert(iv.reg, r);
                    let at = active.partition_point(|a| a.end <= iv.end);
                    active.insert(at, *iv);
                }
                _ => spills.push(iv.reg),
            }
        }
    }

    let spilled = spills.len();
    let mut k = rewrite(kernel, &assign, &spills, budget);
    k.recount_regs();
    Some(AllocResult {
        regs_used: k.regs_per_thread,
        spilled,
        kernel: k,
    })
}

/// Rewrites the kernel: applies the virtual→physical map and inserts
/// spill loads/stores around uses/defs of spilled registers.
fn rewrite(kernel: &Kernel, assign: &HashMap<Reg, u16>, spills: &[Reg], budget: u32) -> Kernel {
    let mut slot_of: HashMap<Reg, i64> = HashMap::new();
    let mut local_top = i64::from(kernel.local_mem_bytes);
    for &r in spills {
        slot_of.insert(r, local_top);
        local_top += 8;
    }
    let scratch = [
        Reg(budget as u16),
        Reg(budget as u16 + 1),
        Reg(budget as u16 + 2),
        Reg(budget as u16 + 3),
    ];

    let mut out = kernel.clone();
    out.local_mem_bytes = local_top as u32;
    for blk in &mut out.blocks {
        let mut insts: Vec<Instruction> = Vec::with_capacity(blk.insts.len());
        for inst in &blk.insts {
            let mut inst = inst.clone();
            let mut next_scratch = 0usize;
            let mut loaded: HashMap<Reg, Reg> = HashMap::new();
            // Reload spilled sources (and predicate) into scratch regs.
            let reload = |r: Reg,
                          insts: &mut Vec<Instruction>,
                          next_scratch: &mut usize,
                          loaded: &mut HashMap<Reg, Reg>|
             -> Reg {
                if let Some(&s) = loaded.get(&r) {
                    return s;
                }
                let s = scratch[*next_scratch % scratch.len()];
                *next_scratch += 1;
                let mut ld =
                    Instruction::new(Opcode::Ld(MemSpace::Local), Some(s), vec![Operand::Imm(0)]);
                ld.offset = slot_of[&r];
                insts.push(ld);
                loaded.insert(r, s);
                s
            };
            for o in &mut inst.srcs {
                if let Operand::Reg(r) = *o {
                    if slot_of.contains_key(&r) {
                        let s = reload(r, &mut insts, &mut next_scratch, &mut loaded);
                        *o = Operand::Reg(s);
                    } else {
                        *o = Operand::Reg(Reg(assign[&r]));
                    }
                }
            }
            if let Some((p, sense)) = inst.pred {
                if slot_of.contains_key(&p) {
                    let s = reload(p, &mut insts, &mut next_scratch, &mut loaded);
                    inst.pred = Some((s, sense));
                } else {
                    inst.pred = Some((Reg(assign[&p]), sense));
                }
            }
            // Spilled destination: write a scratch register, then store it.
            let mut post: Option<Instruction> = None;
            if let Some(d) = inst.dst {
                if let Some(&slot) = slot_of.get(&d) {
                    let s = scratch[0];
                    inst.dst = Some(s);
                    let mut st = Instruction::new(
                        Opcode::St(MemSpace::Local),
                        None,
                        vec![Operand::Imm(0), Operand::Reg(s)],
                    );
                    st.offset = slot;
                    st.pred = inst.pred;
                    post = Some(st);
                } else {
                    inst.dst = Some(Reg(assign[&d]));
                }
            }
            insts.push(inst);
            if let Some(st) = post {
                insts.push(st);
            }
        }
        blk.insts = insts;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::config::GpuConfig;
    use gpu_sim::gpu::Gpu;
    use gpu_sim::isa::{Cmp, Special};
    use gpu_sim::scheduler::SchedulerKind;
    use gpu_sim::sm::LaunchDims;

    /// A kernel with many simultaneously live values: t[j] = tid + j all
    /// summed at the end, forcing `n` live registers.
    fn wide_kernel(n: usize) -> Kernel {
        let mut b = KernelBuilder::new("wide");
        let tid = b.special(Special::TidX);
        let vals: Vec<_> = (0..n).map(|j| b.iadd(tid, j as i64)).collect();
        let mut acc = b.mov(0i64);
        for v in vals {
            acc = b.iadd(acc, v);
        }
        let addr = b.imul(tid, 8);
        b.st_global(addr, acc, 0);
        b.exit();
        b.finish()
    }

    fn run_output(kernel: &Kernel, threads: u32) -> Vec<u64> {
        let mut gpu = Gpu::launch(
            GpuConfig::gtx480(),
            kernel.flatten(),
            LaunchDims::linear(1, threads),
            SchedulerKind::Gto,
        )
        .unwrap();
        gpu.run(10_000_000).unwrap();
        (0..u64::from(threads))
            .map(|t| gpu.global().read(t * 8))
            .collect()
    }

    #[test]
    fn allocation_preserves_semantics_without_spills() {
        let k = wide_kernel(10);
        let before = run_output(&k, 32);
        let alloc = allocate(&k, 63).unwrap();
        assert_eq!(alloc.spilled, 0);
        assert!(alloc.regs_used <= 63);
        assert!(alloc.regs_used < k.regs_per_thread);
        let after = run_output(&alloc.kernel, 32);
        assert_eq!(before, after);
    }

    #[test]
    fn allocation_with_spills_preserves_semantics() {
        let k = wide_kernel(40);
        // The raw kernel exceeds the GTX480 register limit; use a roomy
        // allocation as the reference output.
        let reference = allocate(&k, 63).unwrap();
        assert_eq!(reference.spilled, 0);
        let before = run_output(&reference.kernel, 32);
        // Budget far below the 40+ simultaneously-live values.
        let alloc = allocate(&k, 16).unwrap();
        assert!(alloc.spilled > 0, "expected spills");
        assert!(alloc.regs_used <= 16);
        let after = run_output(&alloc.kernel, 32);
        assert_eq!(before, after);
        // Spill slots were allocated in local memory.
        assert!(alloc.kernel.local_mem_bytes >= 8 * alloc.spilled as u32);
    }

    #[test]
    fn loop_kernel_allocates_correctly() {
        let mut b = KernelBuilder::new("loop");
        let tid = b.special(Special::TidX);
        let acc = b.mov(0i64);
        let i = b.mov(0i64);
        b.label("head");
        let t = b.imul(i, 3);
        let acc2 = b.iadd(acc, t);
        b.mov_to(acc, acc2);
        let i2 = b.iadd(i, 1);
        b.mov_to(i, i2);
        let p = b.setp(Cmp::Lt, i, 8i64);
        b.bra_if(p, true, "head");
        let addr = b.imul(tid, 8);
        b.st_global(addr, acc, 0);
        b.exit();
        let k = b.finish();
        let before = run_output(&k, 32);
        assert_eq!(before[0], (0..8).map(|i| i * 3).sum::<u64>());
        for budget in [63u32, 8, 6] {
            let alloc = allocate(&k, budget).unwrap();
            let after = run_output(&alloc.kernel, 32);
            assert_eq!(before, after, "budget {budget}");
        }
    }

    #[test]
    fn allocation_reuses_registers() {
        // Sequential dependent computation: temporaries die immediately,
        // so very few physical registers are needed.
        let mut b = KernelBuilder::new("chain");
        let tid = b.special(Special::TidX);
        let mut v = b.mov(1i64);
        for _ in 0..30 {
            v = b.iadd(v, 1);
        }
        let addr = b.imul(tid, 8);
        b.st_global(addr, v, 0);
        b.exit();
        let k = b.finish();
        let alloc = allocate(&k, 63).unwrap();
        assert!(
            alloc.regs_used <= 6,
            "chain should reuse registers, used {}",
            alloc.regs_used
        );
        assert_eq!(run_output(&alloc.kernel, 32)[5], 31);
    }

    #[test]
    fn impossible_budget_errors() {
        let k = wide_kernel(8);
        let err = allocate(&k, 3).unwrap_err();
        assert_eq!(err.budget, 3);
    }

    #[test]
    fn predicated_code_with_spills() {
        // Predicated store via divergent branch, with a tiny budget so the
        // predicate register itself may spill.
        let mut b = KernelBuilder::new("pred");
        let tid = b.special(Special::TidX);
        let extra: Vec<_> = (0..10).map(|j| b.iadd(tid, j)).collect();
        let p = b.setp(Cmp::Lt, tid, 16i64);
        b.bra_if(p, false, "skip");
        let addr0 = b.imul(tid, 8);
        b.st_global(addr0, 7i64, 0);
        b.label("skip");
        let mut acc = b.mov(0i64);
        for v in extra {
            acc = b.iadd(acc, v);
        }
        let addr = b.imul(tid, 8);
        b.st_global(addr, acc, 8192);
        b.exit();
        let k = b.finish();
        let before = run_output(&k, 32);
        let alloc = allocate(&k, 8).unwrap();
        assert!(alloc.spilled > 0);
        let after = run_output(&alloc.kernel, 32);
        assert_eq!(before, after);
    }
}
