//! Per-scheme compilation pipelines (paper §VI-B1's scheme taxonomy).
//!
//! A resilience scheme combines a *recovery* strategy (idempotent regions
//! with register renaming or live-out checkpointing) with a *detection*
//! strategy (acoustic sensors, SwapCodes duplication, or the tail-DMR
//! hybrid). This module runs the corresponding pass sequence:
//!
//! ```text
//! virtual kernel
//!   └─ register allocation                       (always)
//!        └─ region formation (± §III-E opt)      (unless baseline)
//!             └─ renaming / checkpointing        (recovery)
//!                  └─ SwapCodes / tail-DMR       (detection)
//!                       └─ flatten + region table
//! ```

use crate::checkpoint::checkpoint;
use crate::checkpoint::CheckpointSlot;
use crate::regalloc::{allocate, AllocError};
use crate::region::{form_regions, region_stats, regions_of, Exemptions, RegionStats};
use crate::region_opt::detect;
use crate::renaming::rename;
use crate::swapcodes::duplicate;
use crate::taildmr::tail_dmr;
use gpu_sim::isa::Opcode;
use gpu_sim::program::{FlatKernel, Kernel};
use std::collections::HashMap;

/// Recovery strategy of a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Recovery {
    /// No recovery support (baseline / detection-only studies).
    None,
    /// Idempotent regions with anti-dependent register renaming (Flame).
    Renaming,
    /// Idempotent regions with live-out register checkpointing (Penny).
    Checkpointing,
}

/// Detection strategy of a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detection {
    /// No detection (recovery-only studies).
    None,
    /// Acoustic sensors: no instrumentation, but each region must be
    /// verified for WCDL cycles at runtime (handled by flame-core).
    Sensor,
    /// SwapCodes instruction duplication: errors detected in-place, no
    /// verification delay.
    Duplication,
    /// Tail-DMR hybrid: sensors for region heads, duplication for tails.
    Hybrid,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Recovery strategy.
    pub recovery: Recovery,
    /// Detection strategy.
    pub detection: Detection,
    /// Worst-case detection latency in cycles (sizes tail-DMR tails).
    pub wcdl: u32,
    /// Architectural register budget per thread.
    pub max_regs: u32,
    /// Apply the §III-E region-size extension optimization.
    pub region_opt: bool,
    /// Register-allocation budget headroom left for renaming/shadow
    /// registers (the baseline is allocated with the same reduced budget
    /// so that comparisons isolate the schemes' own costs).
    pub alloc_headroom: u32,
}

impl BuildOptions {
    /// Baseline: no resilience.
    pub fn baseline(max_regs: u32) -> BuildOptions {
        BuildOptions {
            recovery: Recovery::None,
            detection: Detection::None,
            wcdl: 20,
            max_regs,
            region_opt: false,
            alloc_headroom: 8,
        }
    }

    /// Flame: sensors + renaming + region optimization.
    pub fn flame(max_regs: u32, wcdl: u32) -> BuildOptions {
        BuildOptions {
            recovery: Recovery::Renaming,
            detection: Detection::Sensor,
            wcdl,
            max_regs,
            region_opt: true,
            alloc_headroom: 8,
        }
    }
}

/// Compile-time statistics of a built kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompileStats {
    /// Region statistics (zeroed for the baseline).
    pub regions: usize,
    /// Mean static region size.
    pub mean_region_size: f64,
    /// Registers per thread after all passes.
    pub regs_per_thread: u32,
    /// Spilled virtual registers.
    pub spills: usize,
    /// WARs fixed by renaming.
    pub renamed: usize,
    /// Checkpoint stores inserted.
    pub checkpoints: usize,
    /// Replica instructions inserted by duplication passes.
    pub duplicated: usize,
    /// Barriers made transparent by the §III-E optimization.
    pub transparent_barriers: usize,
}

/// A kernel compiled for a resilience scheme.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The executable kernel.
    pub flat: FlatKernel,
    /// The block-structured kernel (for inspection/tests).
    pub kernel: Kernel,
    /// For each region-start PC (the instruction after a boundary), the
    /// checkpointed registers to restore on rollback (empty under
    /// renaming).
    pub restores_by_pc: HashMap<u32, Vec<CheckpointSlot>>,
    /// Compile statistics.
    pub stats: CompileStats,
}

/// Builds `kernel` for the scheme described by `opts`.
///
/// # Errors
///
/// Returns [`AllocError`] when the kernel cannot be register-allocated
/// within the budget.
pub fn build(kernel: &Kernel, opts: &BuildOptions) -> Result<CompiledKernel, AllocError> {
    let alloc_budget = opts.max_regs.saturating_sub(opts.alloc_headroom).max(8);
    let alloc = allocate(kernel, alloc_budget)?;
    let mut stats = CompileStats {
        spills: alloc.spilled,
        ..CompileStats::default()
    };

    let needs_regions = opts.recovery != Recovery::None || opts.detection != Detection::None;
    if !needs_regions {
        stats.regs_per_thread = alloc.kernel.regs_per_thread;
        return Ok(CompiledKernel {
            flat: alloc.kernel.flatten(),
            restores_by_pc: HashMap::new(),
            stats,
            kernel: alloc.kernel,
        });
    }

    let (exemptions, opt_stats) = if opts.region_opt {
        detect(&alloc.kernel)
    } else {
        (Exemptions::none(), Default::default())
    };
    stats.transparent_barriers = opt_stats.transparent_barriers;
    let mut k = form_regions(&alloc.kernel, &exemptions);

    let mut restores_by_ordinal: Vec<Vec<CheckpointSlot>> = Vec::new();
    match opts.recovery {
        Recovery::None => {}
        Recovery::Renaming => {
            let (renamed, rstats) = rename(&k, opts.max_regs);
            assert_eq!(
                rstats.unresolved, 0,
                "renaming exhausted the register budget on `{}`",
                kernel.name
            );
            stats.renamed = rstats.renamed;
            k = renamed;
        }
        Recovery::Checkpointing => {
            let res = checkpoint(&k);
            stats.checkpoints = res.checkpoints;
            restores_by_ordinal = res.restores;
            k = res.kernel;
        }
    }

    match opts.detection {
        Detection::None | Detection::Sensor => {}
        Detection::Duplication => {
            let (dup, dstats) = duplicate(&k, opts.max_regs);
            stats.duplicated = dstats.duplicated + dstats.seeds;
            k = dup;
        }
        Detection::Hybrid => {
            let (dup, dstats) = tail_dmr(&k, opts.wcdl, opts.max_regs);
            stats.duplicated = dstats.duplicated + dstats.seeds;
            k = dup;
        }
    }

    let rstats: RegionStats = region_stats(&k);
    stats.regions = rstats.regions;
    stats.mean_region_size = rstats.mean_size;
    stats.regs_per_thread = k.regs_per_thread;

    let flat = k.flatten();
    let mut restores_by_pc = HashMap::new();
    let mut ordinal = 0usize;
    for (pc, inst) in flat.insts.iter().enumerate() {
        if inst.op == Opcode::RegionBoundary {
            let list = restores_by_ordinal
                .get(ordinal)
                .cloned()
                .unwrap_or_default();
            if !list.is_empty() {
                restores_by_pc.insert(pc as u32 + 1, list);
            }
            ordinal += 1;
        }
    }

    Ok(CompiledKernel {
        flat,
        restores_by_pc,
        stats,
        kernel: k,
    })
}

/// Average *dynamic* region size cannot be known statically; this helper
/// reports the static mean which the paper's §IV discussion (50.23
/// instructions average) corresponds to at the static level.
pub fn static_region_sizes(kernel: &Kernel) -> Vec<usize> {
    regions_of(kernel).iter().map(|r| r.insts.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::config::GpuConfig;
    use gpu_sim::gpu::Gpu;
    use gpu_sim::isa::{Cmp, MemSpace, Special};
    use gpu_sim::scheduler::SchedulerKind;
    use gpu_sim::sm::LaunchDims;

    fn workload() -> Kernel {
        let mut b = KernelBuilder::new("w");
        let sh = b.alloc_shared(64 * 8);
        let tid = b.special(Special::TidX);
        let sa = b.imul(tid, 8);
        b.st_arr(MemSpace::Shared, 1, sa, tid, sh);
        b.barrier();
        let i = b.mov(0i64);
        let acc = b.mov(0i64);
        b.label("head");
        let n = b.iadd(tid, i);
        let nw = b.irem(n, 64);
        let na = b.imul(nw, 8);
        let v = b.ld_arr(MemSpace::Shared, 1, na, sh);
        let acc2 = b.iadd(acc, v);
        b.mov_to(acc, acc2);
        let i2 = b.iadd(i, 1);
        b.mov_to(i, i2);
        let p = b.setp(Cmp::Lt, i, 8i64);
        b.bra_if(p, true, "head");
        let ga = b.imul(tid, 8);
        b.st_arr(MemSpace::Global, 2, ga, acc, 0);
        b.exit();
        b.finish()
    }

    fn all_schemes() -> Vec<(&'static str, BuildOptions)> {
        let m = 63;
        vec![
            ("baseline", BuildOptions::baseline(m)),
            ("flame", BuildOptions::flame(m, 20)),
            (
                "sensor+ckpt",
                BuildOptions {
                    recovery: Recovery::Checkpointing,
                    detection: Detection::Sensor,
                    wcdl: 20,
                    max_regs: m,
                    region_opt: false,
                    alloc_headroom: 8,
                },
            ),
            (
                "dup+renaming",
                BuildOptions {
                    recovery: Recovery::Renaming,
                    detection: Detection::Duplication,
                    wcdl: 20,
                    max_regs: m,
                    region_opt: false,
                    alloc_headroom: 8,
                },
            ),
            (
                "hybrid+ckpt",
                BuildOptions {
                    recovery: Recovery::Checkpointing,
                    detection: Detection::Hybrid,
                    wcdl: 20,
                    max_regs: m,
                    region_opt: false,
                    alloc_headroom: 8,
                },
            ),
        ]
    }

    fn run(flat: &FlatKernel) -> Vec<u64> {
        let mut gpu = Gpu::launch(
            GpuConfig::gtx480(),
            flat.clone(),
            LaunchDims::linear(2, 64),
            SchedulerKind::Gto,
        )
        .unwrap();
        gpu.run(10_000_000).unwrap();
        (0..64u64).map(|t| gpu.global().read(t * 8)).collect()
    }

    #[test]
    fn all_schemes_produce_identical_output() {
        let k = workload();
        let base = build(&k, &BuildOptions::baseline(63)).unwrap();
        let expect = run(&base.flat);
        for (name, opts) in all_schemes() {
            let built = build(&k, &opts).unwrap();
            assert_eq!(run(&built.flat), expect, "scheme {name}");
        }
    }

    #[test]
    fn baseline_has_no_boundaries() {
        let k = workload();
        let built = build(&k, &BuildOptions::baseline(63)).unwrap();
        assert!(!built
            .flat
            .insts
            .iter()
            .any(|i| i.op == Opcode::RegionBoundary));
        assert!(built.restores_by_pc.is_empty());
    }

    #[test]
    fn flame_build_has_regions_and_no_restores() {
        let k = workload();
        let built = build(&k, &BuildOptions::flame(63, 20)).unwrap();
        assert!(built.stats.regions > 1);
        assert!(
            built.restores_by_pc.is_empty(),
            "renaming needs no restores"
        );
    }

    #[test]
    fn checkpointing_build_has_restores_at_region_pcs() {
        let k = workload();
        let opts = BuildOptions {
            recovery: Recovery::Checkpointing,
            detection: Detection::Sensor,
            wcdl: 20,
            max_regs: 63,
            region_opt: false,
            alloc_headroom: 8,
        };
        let built = build(&k, &opts).unwrap();
        assert!(built.stats.checkpoints > 0);
        assert!(!built.restores_by_pc.is_empty());
        // Every restore PC follows a boundary instruction.
        for &pc in built.restores_by_pc.keys() {
            assert_eq!(built.flat.insts[pc as usize - 1].op, Opcode::RegionBoundary);
        }
    }

    #[test]
    fn duplication_grows_instruction_count() {
        let k = workload();
        let base = build(&k, &BuildOptions::baseline(63)).unwrap();
        let dup = build(
            &k,
            &BuildOptions {
                recovery: Recovery::Renaming,
                detection: Detection::Duplication,
                wcdl: 20,
                max_regs: 63,
                region_opt: false,
                alloc_headroom: 8,
            },
        )
        .unwrap();
        assert!(dup.flat.len() > base.flat.len() + base.flat.len() / 2);
        assert!(dup.stats.duplicated > 0);
    }

    #[test]
    fn region_opt_reduces_boundaries() {
        let k = workload();
        let with = build(&k, &BuildOptions::flame(63, 20)).unwrap();
        let without = build(
            &k,
            &BuildOptions {
                region_opt: false,
                ..BuildOptions::flame(63, 20)
            },
        )
        .unwrap();
        assert!(with.stats.regions <= without.stats.regions);
        assert!(with.stats.transparent_barriers >= 1);
    }
}
