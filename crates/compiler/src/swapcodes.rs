//! SwapCodes-style instruction duplication (paper §V-B1).
//!
//! SwapCodes detects soft errors by executing a replica of every
//! computational instruction into a *shadow* register that is paired with
//! the original's ECC code — mismatches surface through the existing ECC
//! check logic, so no explicit compare instructions are needed. The cost
//! that remains (and that the paper measures at ~34–45 %) is the doubled
//! issue bandwidth and the extra register pressure, which is exactly what
//! this pass models: one replica per computational instruction, a shadow
//! seed `mov` per load, and a shadow register map drawn from the spare
//! architectural registers.
//!
//! Shadow values never feed the architectural results, so when the spare
//! register pool is smaller than the number of shadowed registers,
//! shadows share registers round-robin — harmless for simulation
//! fidelity, mirroring how a real implementation would spill or rotate
//! ECC-pair registers.

use gpu_sim::isa::{Instruction, Opcode, Operand, Reg};
use gpu_sim::program::Kernel;
use std::collections::HashMap;

/// Outcome of a duplication pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DupStats {
    /// Replica instructions inserted.
    pub duplicated: usize,
    /// Shadow-seed moves inserted after loads.
    pub seeds: usize,
    /// Shadow registers allocated.
    pub shadow_regs: usize,
}

/// Duplicates every computational instruction in the kernel (full
/// SwapCodes protection). `max_regs` bounds the register budget from
/// which shadow registers are drawn.
pub fn duplicate(kernel: &Kernel, max_regs: u32) -> (Kernel, DupStats) {
    duplicate_where(kernel, max_regs, |_, _| true)
}

/// Duplicates the computational instructions selected by `select`, which
/// receives `(linear_position, instruction)`. Used both for full
/// duplication and for tail-DMR's per-region tails.
pub fn duplicate_where(
    kernel: &Kernel,
    max_regs: u32,
    mut select: impl FnMut(usize, &Instruction) -> bool,
) -> (Kernel, DupStats) {
    let base = kernel
        .max_reg()
        .map_or(0, |r| u32::from(r.0) + 1)
        .max(kernel.regs_per_thread);
    let spare = max_regs.saturating_sub(base).max(1);
    let mut shadow_map: HashMap<Reg, Reg> = HashMap::new();
    let mut next_shadow = 0u32;
    let mut stats = DupStats::default();

    let shadow_of = |r: Reg, map: &mut HashMap<Reg, Reg>, next: &mut u32| -> Reg {
        *map.entry(r).or_insert_with(|| {
            let s = Reg((base + (*next % spare)) as u16);
            *next += 1;
            s
        })
    };

    let mut out = kernel.clone();
    let mut pos = 0usize;
    for blk in &mut out.blocks {
        let mut insts = Vec::with_capacity(blk.insts.len() * 2);
        for inst in &blk.insts {
            let selected = select(pos, inst);
            pos += 1;
            insts.push(inst.clone());
            if !selected {
                continue;
            }
            match inst.op {
                op if op.is_compute() => {
                    let Some(d) = inst.dst else { continue };
                    let mut replica = inst.clone();
                    replica.dst = Some(shadow_of(d, &mut shadow_map, &mut next_shadow));
                    for o in &mut replica.srcs {
                        if let Operand::Reg(r) = *o {
                            if let Some(&s) = shadow_map.get(&r) {
                                *o = Operand::Reg(s);
                            }
                        }
                    }
                    insts.push(replica);
                    stats.duplicated += 1;
                }
                Opcode::Ld(_) | Opcode::Atom(..) => {
                    // Loads (ECC-protected) are not duplicated; seed the
                    // shadow copy of the loaded value with a move.
                    let Some(d) = inst.dst else { continue };
                    let s = shadow_of(d, &mut shadow_map, &mut next_shadow);
                    let mut mv = Instruction::new(Opcode::Mov, Some(s), vec![Operand::Reg(d)]);
                    mv.pred = inst.pred;
                    insts.push(mv);
                    stats.seeds += 1;
                }
                _ => {}
            }
        }
        blk.insts = insts;
    }
    stats.shadow_regs = shadow_map.len().min(spare as usize);
    out.recount_regs();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::builder::KernelBuilder;
    use gpu_sim::config::GpuConfig;
    use gpu_sim::gpu::Gpu;
    use gpu_sim::isa::{MemSpace, Special};
    use gpu_sim::scheduler::SchedulerKind;
    use gpu_sim::sm::LaunchDims;

    fn sample() -> Kernel {
        let mut b = KernelBuilder::new("s");
        let tid = b.special(Special::TidX);
        let a = b.imul(tid, 8);
        let v = b.ld_arr(MemSpace::Global, 0, a, 0);
        let w = b.iadd(v, 5);
        let x = b.imul(w, 3);
        b.st_arr(MemSpace::Global, 1, a, x, 65536);
        b.exit();
        b.finish()
    }

    #[test]
    fn duplication_preserves_semantics() {
        let k = sample();
        let (dup, stats) = duplicate(&k, 63);
        assert!(stats.duplicated >= 4); // tid-mov, imul, iadd, imul
        assert_eq!(stats.seeds, 1);
        let run = |k: &Kernel| {
            let mut gpu = Gpu::launch(
                GpuConfig::gtx480(),
                k.flatten(),
                LaunchDims::linear(1, 32),
                SchedulerKind::Gto,
            )
            .unwrap();
            for i in 0..32u64 {
                gpu.global_mut().write(i * 8, i);
            }
            gpu.run(1_000_000).unwrap();
            (0..32u64)
                .map(|t| gpu.global().read(65536 + t * 8))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&k), run(&dup));
    }

    #[test]
    fn duplication_roughly_doubles_compute() {
        let k = sample();
        let compute_before = k.iter().filter(|(_, _, i)| i.op.is_compute()).count();
        let (dup, _) = duplicate(&k, 63);
        let compute_after = dup.iter().filter(|(_, _, i)| i.op.is_compute()).count();
        // Each compute instruction is replicated, plus one seed mov.
        assert_eq!(compute_after, compute_before * 2 + 1);
    }

    #[test]
    fn stores_and_branches_not_duplicated() {
        let k = sample();
        let (dup, _) = duplicate(&k, 63);
        let stores = |k: &Kernel| {
            k.iter()
                .filter(|(_, _, i)| matches!(i.op, Opcode::St(_)))
                .count()
        };
        assert_eq!(stores(&k), stores(&dup));
    }

    #[test]
    fn shadow_regs_fit_budget() {
        let k = sample();
        let (dup, _) = duplicate(&k, 63);
        assert!(dup.regs_per_thread <= 63);
        // Tight budget: shadows share registers but never exceed it.
        let (dup2, _) = duplicate(&k, k.regs_per_thread + 2);
        assert!(dup2.regs_per_thread <= k.regs_per_thread + 2);
    }

    #[test]
    fn selective_duplication_respects_predicate() {
        let k = sample();
        let (dup, stats) = duplicate_where(&k, 63, |pos, _| pos < 2);
        assert!(stats.duplicated <= 2);
        assert!(dup.len() < duplicate(&k, 63).0.len());
    }

    #[test]
    fn replica_reads_shadow_sources() {
        // w = v + 5; replica must read shadow(v) once v has a shadow.
        let k = sample();
        let (dup, _) = duplicate(&k, 63);
        // Find the replica of iadd (the instruction after the original).
        let insts: Vec<_> = dup.iter().map(|(_, _, i)| i.clone()).collect();
        let orig_idx = insts
            .iter()
            .position(|i| i.op == Opcode::IAdd && i.srcs.contains(&Operand::Imm(5)))
            .unwrap();
        let replica = &insts[orig_idx + 1];
        assert_eq!(replica.op, Opcode::IAdd);
        assert_ne!(replica.dst, insts[orig_idx].dst);
        assert_ne!(replica.srcs[0], insts[orig_idx].srcs[0]);
    }
}
