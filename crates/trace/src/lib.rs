//! # flame-trace — cycle-level tracing for the flame-rs simulator
//!
//! A zero-cost-when-disabled observability subsystem: the simulator emits
//! cycle-stamped [`Event`]s through a [`Tracer`] wherever it also updates
//! its statistics counters, and this crate records, aggregates and
//! exports them.
//!
//! The design has three layers:
//!
//! * **Event model** ([`event`]) — warp issue/retire, issue-stalls with
//!   their cause, region-boundary enter/verify/commit, RBQ
//!   enqueue/dequeue with occupancy (Flame's WCDL deschedule/re-ready),
//!   memory-request lifecycle, CTA launch/drain and the fault harness's
//!   strike → detect → rollback arc.
//! * **Recorder** ([`record`]) — a [`Tracer`] holding an optional boxed
//!   [`TraceBuffer`]; when disabled (the default) every emission is a
//!   single never-taken branch, so the hot path stays within noise of the
//!   untraced simulator and `SimStats` is bit-identical either way. The
//!   buffer is a bounded ring (old events are evicted, never the run
//!   aborted) feeding *streaming* aggregators — per-scheduler stall
//!   attribution that sums exactly to the simulator's `StallStats`, plus
//!   histograms for RBQ occupancy and region-verification latency — which
//!   stay exact even after ring eviction.
//! * **Export** ([`export`]) — the merged whole-GPU [`SimTrace`] renders
//!   as Chrome-tracing/Perfetto JSON (one track per SM/scheduler/warp), a
//!   flat CSV of per-region records and a human-readable stall-breakdown
//!   table. A dependency-free JSON validator backs the smoke tests.
//!
//! The crate is deliberately dependency-free (it sits *below* `gpu-sim`
//! in the workspace graph so the simulator itself can emit events).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod export;
pub mod record;
pub mod trace;

pub use event::{Event, StallCause};
pub use export::{chrome_trace_json, region_csv, stall_table, validate_json};
pub use record::{
    default_capacity, Histogram, RegionRecord, StallMatrix, TraceBuffer, TraceRecord, Tracer,
    DEFAULT_CAPACITY,
};
pub use trace::{SimTrace, SmRecord, HARNESS_SM};
