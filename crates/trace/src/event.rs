//! The cycle-stamped event model.
//!
//! Every variant corresponds to one instrumentation point in the
//! simulator, placed *at the same statement* that updates the matching
//! statistics counter — that co-location is what makes the streaming
//! aggregates provably equal to `SimStats` (asserted by the trace tests).

/// Why a scheduler failed to issue in a cycle. Mirrors the simulator's
/// per-scheduler stall attribution (`StallStats` has one counter per
/// variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// No live warp was resident on the scheduler's slots.
    NoWarp,
    /// All resident warps were blocked on the scoreboard.
    Scoreboard,
    /// A memory instruction could not issue because MSHRs were full.
    MshrFull,
    /// All resident warps were waiting at a barrier.
    Barrier,
    /// All resident warps sat in the region boundary queue awaiting
    /// verification.
    RbqWait,
    /// The scheduler itself was blocked (naive serialized verification).
    SchedBlocked,
}

impl StallCause {
    /// Every cause, in the order of the simulator's `StallStats` fields.
    pub const ALL: [StallCause; 6] = [
        StallCause::NoWarp,
        StallCause::Scoreboard,
        StallCause::MshrFull,
        StallCause::Barrier,
        StallCause::RbqWait,
        StallCause::SchedBlocked,
    ];

    /// Stable index into [`StallCause::ALL`] (and per-cause count arrays).
    pub fn index(self) -> usize {
        match self {
            StallCause::NoWarp => 0,
            StallCause::Scoreboard => 1,
            StallCause::MshrFull => 2,
            StallCause::Barrier => 3,
            StallCause::RbqWait => 4,
            StallCause::SchedBlocked => 5,
        }
    }

    /// Short display name (matches the `StallStats` field name).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::NoWarp => "no_warp",
            StallCause::Scoreboard => "scoreboard",
            StallCause::MshrFull => "mshr_full",
            StallCause::Barrier => "barrier",
            StallCause::RbqWait => "rbq_wait",
            StallCause::SchedBlocked => "sched_blocked",
        }
    }
}

/// One traced simulator event. `slot` is an SM warp-slot index, `sched` a
/// scheduler index within the SM; the emitting SM is implicit (each SM
/// owns its own [`crate::Tracer`]) and added back when buffers are merged
/// into a [`crate::SimTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A CTA was installed on the SM.
    CtaLaunch {
        /// Linear CTA index in the grid.
        cta: u32,
        /// Warps the CTA brought.
        warps: u32,
    },
    /// A CTA retired (all its warps finished).
    CtaDrain {
        /// The SM-local CTA slot that drained.
        cta_slot: u32,
    },
    /// A warp issued one instruction.
    WarpIssue {
        /// Issuing warp slot (its scheduler is `slot % schedulers`).
        slot: u32,
        /// Program counter of the issued instruction.
        pc: u32,
    },
    /// A warp finished (issued its last `Exit`).
    WarpRetire {
        /// Retiring warp slot.
        slot: u32,
    },
    /// A scheduler could not issue for `cycles` consecutive cycles, all
    /// attributed to `cause`. The per-cycle loop emits `cycles == 1`; the
    /// event-driven clock emits one bulk event for a whole skipped idle
    /// window. Summed per cause, these equal `StallStats` exactly in both
    /// clock modes.
    IssueStall {
        /// Stalled scheduler.
        sched: u32,
        /// Attributed dominant cause.
        cause: StallCause,
        /// Stalled cycles credited (≥ 1).
        cycles: u64,
    },
    /// A warp crossed a region boundary (counted in
    /// `resilience.boundaries`).
    RegionEnter {
        /// The warp slot.
        slot: u32,
        /// PC of the first instruction of the *next* region.
        pc: u32,
    },
    /// The boundary committed immediately (recovery-only, duplication and
    /// naive schemes: the RPT advanced on the spot).
    RegionCommit {
        /// The warp slot.
        slot: u32,
    },
    /// WCDL deschedule: the warp entered the region boundary queue
    /// (counted in `resilience.deschedules`).
    RbqEnqueue {
        /// The descheduled warp slot.
        slot: u32,
        /// Warps under verification on this SM *after* the push (the RBQ
        /// occupancy sample).
        depth: u32,
    },
    /// WCDL re-ready: the warp popped out of the region boundary queue.
    RbqDequeue {
        /// The woken warp slot.
        slot: u32,
        /// Warps still under verification on this SM after the pop.
        depth: u32,
    },
    /// The popped warp's region is verified and its RPT entry advanced
    /// (counted in `resilience.verifications`).
    RegionVerify {
        /// The verified warp slot.
        slot: u32,
    },
    /// Naive verification blocked a whole scheduler until `until`.
    SchedBlock {
        /// The blocked scheduler.
        sched: u32,
        /// First cycle at which it may issue again.
        until: u64,
    },
    /// A global-memory request (load, store or atomic) entered the memory
    /// pipeline; its transactions retire at `finish`.
    MemIssue {
        /// Issuing warp slot.
        slot: u32,
        /// Coalesced 128-byte transactions (1 for atomics).
        segments: u32,
        /// Cycle the request completes.
        finish: u64,
    },
    /// A particle strike landed (emitted by the fault harness).
    FaultStrike {
        /// Struck SM.
        sm: u32,
        /// Strike target ("pipeline", "ecc", "control-flow",
        /// "recovery-hw").
        target: &'static str,
        /// Whether the sensor mesh heard it (coverage).
        detected: bool,
    },
    /// A sensor detection was delivered to the SM (recovery follows).
    FaultDetect {
        /// The recovering SM.
        sm: u32,
    },
    /// All live warps of the SM rolled back to their recovery points
    /// (counted in `resilience.recoveries`).
    Rollback {
        /// Warps rolled back.
        warps: u32,
    },
    /// Escalated recovery: every resident CTA restarted from its entry
    /// (counted in `resilience.cta_relaunches`).
    CtaRelaunch {
        /// Warps restarted.
        warps: u32,
    },
    /// The campaign harness captured a whole-GPU checkpoint
    /// (`Gpu::snapshot_delta`) at this cycle.
    SnapshotSave {
        /// Device-memory chunks the checkpoint stored beyond the shared
        /// delta base (the sparsity of the encoding).
        dirty_chunks: u32,
    },
    /// The campaign harness rewound the GPU to a checkpoint
    /// (`Gpu::restore`): a forked run resumes here. Emitted at the
    /// restored cycle, so the subsequent strike → detect → rollback arc
    /// stays causally ordered after it.
    SnapshotRestore {
        /// The checkpoint's capture cycle (equals the event's own cycle
        /// stamp).
        cycle: u64,
    },
}

impl Event {
    /// The warp slot this event belongs to, when it is warp-scoped.
    pub fn slot(&self) -> Option<u32> {
        match *self {
            Event::WarpIssue { slot, .. }
            | Event::WarpRetire { slot }
            | Event::RegionEnter { slot, .. }
            | Event::RegionCommit { slot }
            | Event::RbqEnqueue { slot, .. }
            | Event::RbqDequeue { slot, .. }
            | Event::RegionVerify { slot }
            | Event::MemIssue { slot, .. } => Some(slot),
            _ => None,
        }
    }

    /// Whether this is an [`Event::IssueStall`] (the only event kind whose
    /// *sequence* legitimately differs between the per-cycle and
    /// event-driven clocks; only its per-cause sums are invariant).
    pub fn is_stall(&self) -> bool {
        matches!(self, Event::IssueStall { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_cause_indices_are_stable() {
        for (i, c) in StallCause::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let names: std::collections::HashSet<_> =
            StallCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn slot_scoping() {
        assert_eq!(Event::WarpIssue { slot: 3, pc: 9 }.slot(), Some(3));
        assert_eq!(Event::Rollback { warps: 2 }.slot(), None);
        assert!(Event::IssueStall {
            sched: 0,
            cause: StallCause::NoWarp,
            cycles: 5
        }
        .is_stall());
    }
}
