//! Recording: the per-SM [`Tracer`] handle, the bounded event ring and
//! the streaming aggregators that stay exact even after ring eviction.

use crate::event::{Event, StallCause};
use std::collections::VecDeque;

/// Default per-tracer ring capacity (events). 64 Ki events × ~32 bytes ≈
/// 2 MiB per SM; a 16-SM GPU tops out around 32 MiB of trace memory.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Per-run cap on retained [`RegionRecord`]s (they live outside the ring
/// so region CSVs stay complete for realistic runs; beyond this the
/// buffer counts drops instead of growing unboundedly).
pub const REGION_CAPACITY: usize = 1 << 20;

/// Ring capacity to use: `FLAME_TRACE_CAPACITY` if set and parseable
/// (clamped to ≥ 16), else [`DEFAULT_CAPACITY`].
pub fn default_capacity() -> usize {
    match std::env::var("FLAME_TRACE_CAPACITY") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(16),
            Err(_) => DEFAULT_CAPACITY,
        },
        Err(_) => DEFAULT_CAPACITY,
    }
}

/// One recorded event with its emission cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// GPU cycle at which the event was emitted.
    pub cycle: u64,
    /// The event itself.
    pub ev: Event,
}

/// Per-scheduler stall attribution: `counts[sched][cause.index()]` is the
/// number of stall cycles credited to that scheduler for that cause.
///
/// Updated for every [`Event::IssueStall`] *before* the event enters the
/// ring, so the matrix equals the simulator's `StallStats` exactly no
/// matter how many events the ring evicted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallMatrix {
    counts: Vec<[u64; 6]>,
}

impl StallMatrix {
    /// Credit `cycles` stalled cycles on `sched` to `cause`.
    pub fn add(&mut self, sched: u32, cause: StallCause, cycles: u64) {
        let sched = sched as usize;
        if sched >= self.counts.len() {
            self.counts.resize(sched + 1, [0; 6]);
        }
        self.counts[sched][cause.index()] += cycles;
    }

    /// Fold another matrix into this one (used when merging SM buffers).
    pub fn absorb(&mut self, other: &StallMatrix) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), [0; 6]);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }

    /// Number of schedulers that have at least one slot in the matrix.
    pub fn schedulers(&self) -> usize {
        self.counts.len()
    }

    /// Per-cause counts for one scheduler (zeros if it never stalled).
    pub fn row(&self, sched: usize) -> [u64; 6] {
        self.counts.get(sched).copied().unwrap_or([0; 6])
    }

    /// Per-cause counts summed over all schedulers.
    pub fn totals(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for row in &self.counts {
            for (o, c) in out.iter_mut().zip(row) {
                *o += c;
            }
        }
        out
    }

    /// Grand total of stall cycles across all schedulers and causes.
    pub fn total(&self) -> u64 {
        self.totals().iter().sum()
    }
}

/// A fixed-width linear histogram with an explicit overflow bucket.
/// Bucket `i` covers values `[i * width, (i + 1) * width)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with `buckets` in-range buckets of `width` each.
    pub fn new(buckets: usize, width: u64) -> Self {
        Histogram {
            width: width.max(1),
            buckets: vec![0; buckets.max(1)],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one. Panics if the shapes differ
    /// (all flame-trace histograms of one kind share a shape).
    pub fn absorb(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "histogram width mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket-count mismatch"
        );
        for (m, t) in self.buckets.iter_mut().zip(&other.buckets) {
            *m += t;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate p-th percentile (0.0 ≤ p ≤ 1.0): the inclusive upper
    /// bound of the bucket holding the p-th sample. Overflowed samples
    /// report the exact maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return (i as u64 + 1) * self.width - 1;
            }
        }
        self.max
    }
}

/// The lifetime of one verified region of one warp, from boundary
/// crossing to commit/verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionRecord {
    /// Warp slot that executed the region.
    pub slot: u32,
    /// PC of the first instruction after the closing boundary.
    pub pc: u32,
    /// Cycle the closing boundary was crossed ([`Event::RegionEnter`]).
    pub enter: u64,
    /// Cycle the region closed, or `u64::MAX` while still open (run ended
    /// or a rollback re-entered the region).
    pub close: u64,
    /// `true` when closed by an immediate [`Event::RegionCommit`];
    /// `false` when closed by a queued [`Event::RegionVerify`].
    pub committed: bool,
}

impl RegionRecord {
    /// Whether the region ever closed.
    pub fn is_closed(&self) -> bool {
        self.close != u64::MAX
    }

    /// Cycles from boundary to close (`None` while open). Immediate
    /// commits report 0; conveyor verification reports the WCDL wait.
    pub fn latency(&self) -> Option<u64> {
        self.is_closed().then(|| self.close - self.enter)
    }
}

const NO_OPEN_REGION: usize = usize::MAX;

/// The bounded recorder behind an enabled [`Tracer`].
///
/// The event ring holds the most recent `capacity` events (older ones are
/// evicted and counted in [`TraceBuffer::dropped`], never aborting the
/// run). All aggregates — the stall matrix, the histograms and the region
/// records — are updated *before* ring insertion, so they describe the
/// whole run regardless of eviction.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    capacity: usize,
    /// The most recent events, oldest first.
    pub ring: VecDeque<TraceRecord>,
    /// Events evicted from the ring.
    pub dropped: u64,
    /// Per-scheduler stall attribution (exact for the whole run).
    pub stalls: StallMatrix,
    /// RBQ occupancy sampled at every enqueue/dequeue (exact).
    pub rbq_occupancy: Histogram,
    /// Region-verification latency: boundary crossing → verify, in
    /// cycles, for conveyor-verified regions only (exact).
    pub verify_latency: Histogram,
    /// Every region boundary crossed, in crossing order (capped at
    /// [`REGION_CAPACITY`]).
    pub regions: Vec<RegionRecord>,
    /// Region records not retained because [`REGION_CAPACITY`] was hit.
    pub regions_dropped: u64,
    open_region: Vec<usize>,
}

impl TraceBuffer {
    /// A buffer retaining at most `capacity` events (clamped to ≥ 16).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        TraceBuffer {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(1 << 12)),
            dropped: 0,
            stalls: StallMatrix::default(),
            rbq_occupancy: Histogram::new(64, 1),
            verify_latency: Histogram::new(4096, 1),
            regions: Vec::new(),
            regions_dropped: 0,
            open_region: Vec::new(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event, updating aggregates first and the ring second.
    pub fn push(&mut self, cycle: u64, ev: Event) {
        match ev {
            Event::IssueStall {
                sched,
                cause,
                cycles,
            } => self.stalls.add(sched, cause, cycles),
            Event::RbqEnqueue { depth, .. } | Event::RbqDequeue { depth, .. } => {
                self.rbq_occupancy.record(u64::from(depth));
            }
            Event::RegionEnter { slot, pc } => self.open_region_at(slot, pc, cycle),
            Event::RegionCommit { slot } => {
                self.close_region(slot, cycle, true);
            }
            Event::RegionVerify { slot } => {
                if let Some(latency) = self.close_region(slot, cycle, false) {
                    self.verify_latency.record(latency);
                }
            }
            _ => {}
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord { cycle, ev });
    }

    fn open_region_at(&mut self, slot: u32, pc: u32, cycle: u64) {
        let slot = slot as usize;
        if slot >= self.open_region.len() {
            self.open_region.resize(slot + 1, NO_OPEN_REGION);
        }
        // A still-open entry here means a rollback re-ran the region; the
        // stale open stays in `regions` with close == u64::MAX.
        if self.regions.len() < REGION_CAPACITY {
            self.open_region[slot] = self.regions.len();
            self.regions.push(RegionRecord {
                slot: slot as u32,
                pc,
                enter: cycle,
                close: u64::MAX,
                committed: false,
            });
        } else {
            self.open_region[slot] = NO_OPEN_REGION;
            self.regions_dropped += 1;
        }
    }

    fn close_region(&mut self, slot: u32, cycle: u64, committed: bool) -> Option<u64> {
        let idx = self
            .open_region
            .get_mut(slot as usize)
            .map(|i| std::mem::replace(i, NO_OPEN_REGION))?;
        let rec = self.regions.get_mut(idx)?;
        rec.close = cycle;
        rec.committed = committed;
        rec.latency()
    }
}

/// The simulator-facing tracing handle.
///
/// A disabled tracer (the default) holds no buffer: [`Tracer::emit`] is a
/// single never-taken branch and [`Tracer::on`] lets callers skip event
/// argument computation entirely, so the untraced hot path is unchanged.
#[derive(Debug, Default)]
pub struct Tracer {
    buf: Option<Box<TraceBuffer>>,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer with a ring of `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        Tracer {
            buf: Some(Box::new(TraceBuffer::new(capacity))),
        }
    }

    /// Whether events are being recorded. Guard any emission whose
    /// arguments are not free to compute.
    #[inline]
    pub fn on(&self) -> bool {
        self.buf.is_some()
    }

    /// Record `ev` at `cycle` if enabled; a no-op branch otherwise.
    #[inline]
    pub fn emit(&mut self, cycle: u64, ev: Event) {
        if let Some(buf) = &mut self.buf {
            buf.push(cycle, ev);
        }
    }

    /// Detach the recorded buffer, disabling the tracer.
    pub fn take(&mut self) -> Option<Box<TraceBuffer>> {
        self.buf.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.on());
        t.emit(5, Event::WarpIssue { slot: 0, pc: 0 });
        assert!(t.take().is_none());
    }

    #[test]
    fn ring_evicts_but_aggregates_stay_exact() {
        let mut t = Tracer::enabled(16);
        for i in 0..100u64 {
            t.emit(
                i,
                Event::IssueStall {
                    sched: (i % 2) as u32,
                    cause: StallCause::Scoreboard,
                    cycles: 3,
                },
            );
        }
        let buf = t.take().unwrap();
        assert_eq!(buf.ring.len(), 16);
        assert_eq!(buf.dropped, 84);
        assert_eq!(buf.ring.front().unwrap().cycle, 84);
        assert_eq!(buf.stalls.total(), 300);
        assert_eq!(buf.stalls.row(0)[StallCause::Scoreboard.index()], 150);
        assert_eq!(buf.stalls.row(1)[StallCause::Scoreboard.index()], 150);
        assert_eq!(buf.stalls.row(7), [0; 6]);
    }

    #[test]
    fn region_lifecycle_and_verify_latency() {
        let mut buf = TraceBuffer::new(64);
        buf.push(10, Event::RegionEnter { slot: 2, pc: 40 });
        buf.push(10, Event::RbqEnqueue { slot: 2, depth: 1 });
        buf.push(25, Event::RbqDequeue { slot: 2, depth: 0 });
        buf.push(25, Event::RegionVerify { slot: 2 });
        buf.push(30, Event::RegionEnter { slot: 3, pc: 8 });
        buf.push(30, Event::RegionCommit { slot: 3 });
        buf.push(40, Event::RegionEnter { slot: 2, pc: 44 });

        assert_eq!(buf.regions.len(), 3);
        let verified = buf.regions[0];
        assert_eq!((verified.slot, verified.pc), (2, 40));
        assert_eq!(verified.latency(), Some(15));
        assert!(!verified.committed);
        let committed = buf.regions[1];
        assert_eq!(committed.latency(), Some(0));
        assert!(committed.committed);
        assert!(!buf.regions[2].is_closed());
        assert_eq!(buf.verify_latency.count(), 1);
        assert_eq!(buf.verify_latency.max(), 15);
        assert_eq!(buf.rbq_occupancy.count(), 2);
    }

    #[test]
    fn verify_without_open_region_is_ignored() {
        let mut buf = TraceBuffer::new(16);
        buf.push(5, Event::RegionVerify { slot: 9 });
        assert_eq!(buf.verify_latency.count(), 0);
        assert!(buf.regions.is_empty());
    }

    #[test]
    fn rollback_reentry_leaves_stale_region_open() {
        let mut buf = TraceBuffer::new(16);
        buf.push(10, Event::RegionEnter { slot: 0, pc: 4 });
        // Rollback: the warp re-runs and crosses the same boundary again.
        buf.push(50, Event::RegionEnter { slot: 0, pc: 4 });
        buf.push(60, Event::RegionVerify { slot: 0 });
        assert_eq!(buf.regions.len(), 2);
        assert!(!buf.regions[0].is_closed());
        assert_eq!(buf.regions[1].latency(), Some(10));
    }

    #[test]
    fn histogram_percentiles_and_overflow() {
        let mut h = Histogram::new(8, 2);
        for v in [0, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        h.record(1000);
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.percentile(0.5), 5); // 5th sample (value 4) → bucket [4,6) → 5
        assert_eq!(h.percentile(1.0), 1000);
        let mut other = Histogram::new(8, 2);
        other.record(3);
        h.absorb(&other);
        assert_eq!(h.count(), 10);
        assert!((h.mean() - 1031.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn stall_matrix_absorb_and_totals() {
        let mut a = StallMatrix::default();
        a.add(0, StallCause::NoWarp, 5);
        let mut b = StallMatrix::default();
        b.add(2, StallCause::RbqWait, 7);
        a.absorb(&b);
        assert_eq!(a.schedulers(), 3);
        assert_eq!(a.total(), 12);
        let t = a.totals();
        assert_eq!(t[StallCause::NoWarp.index()], 5);
        assert_eq!(t[StallCause::RbqWait.index()], 7);
    }

    #[test]
    fn default_capacity_floor() {
        // The env override clamps to the same floor TraceBuffer::new does.
        std::env::set_var("FLAME_TRACE_CAPACITY", "1");
        assert_eq!(default_capacity(), 16);
        std::env::remove_var("FLAME_TRACE_CAPACITY");
        assert_eq!(default_capacity(), DEFAULT_CAPACITY);
        assert_eq!(TraceBuffer::new(0).capacity(), 16);
    }
}
