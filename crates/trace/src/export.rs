//! Exporters: Chrome-tracing/Perfetto JSON, per-region CSV, a
//! human-readable stall table, and a dependency-free JSON validator used
//! by the smoke tests.

use crate::event::{Event, StallCause};
use crate::trace::{SimTrace, HARNESS_SM};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

/// Thread-id base for scheduler tracks in the Chrome trace
/// (`tid = SCHED_TID_BASE + scheduler`).
pub const SCHED_TID_BASE: u64 = 1000;

/// Thread id of the per-SM instant-event track (CTA launches/drains,
/// fault strikes/detections, rollbacks).
pub const EVENTS_TID: u64 = 1999;

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn new() -> Self {
        EventWriter {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push(',');
        }
        self.out.push('\n');
    }

    /// A complete ("X") slice. `args` must already be a JSON object body
    /// (without braces) or empty.
    #[allow(clippy::too_many_arguments)]
    fn slice(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts: u64, dur: u64, args: &str) {
        self.sep();
        self.out.push_str("{\"ph\":\"X\",\"name\":\"");
        esc(name, &mut self.out);
        let _ = write!(
            self.out,
            "\",\"cat\":\"{cat}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{}",
            dur.max(1)
        );
        if !args.is_empty() {
            let _ = write!(self.out, ",\"args\":{{{args}}}");
        }
        self.out.push('}');
    }

    /// A thread-scoped instant ("i") event.
    fn instant(&mut self, name: &str, cat: &str, pid: u64, tid: u64, ts: u64, args: &str) {
        self.sep();
        self.out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"name\":\"");
        esc(name, &mut self.out);
        let _ = write!(
            self.out,
            "\",\"cat\":\"{cat}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}"
        );
        if !args.is_empty() {
            let _ = write!(self.out, ",\"args\":{{{args}}}");
        }
        self.out.push('}');
    }

    /// A name-metadata ("M") event.
    fn meta(&mut self, what: &str, pid: u64, tid: Option<u64>, name: &str) {
        self.sep();
        let _ = write!(self.out, "{{\"ph\":\"M\",\"name\":\"{what}\",\"pid\":{pid}");
        if let Some(tid) = tid {
            let _ = write!(self.out, ",\"tid\":{tid}");
        }
        self.out.push_str(",\"args\":{\"name\":\"");
        esc(name, &mut self.out);
        self.out.push_str("\"}}");
    }

    fn finish(mut self, dropped: u64, regions_dropped: u64) -> String {
        let _ = write!(
            self.out,
            "\n],\"otherData\":{{\"droppedEvents\":{dropped},\"droppedRegions\":{regions_dropped},\"timeUnit\":\"1 ts = 1 GPU cycle\"}}}}"
        );
        self.out
    }
}

/// Render a merged trace as Chrome-tracing ("trace event format") JSON,
/// loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Track layout: one *process* per SM; within it one *thread* per warp
/// slot (issue slices, region slices, verify-wait slices, memory-request
/// slices), one thread per scheduler (stall slices named by cause,
/// scheduler-block slices) and one `events` thread for instants (CTA
/// launch/drain, fault strike/detect, rollback, CTA relaunch).
/// Timestamps are GPU cycles (rendered as if 1 cycle = 1 µs).
pub fn chrome_trace_json(t: &SimTrace) -> String {
    let mut w = EventWriter::new();
    let last_cycle = t.events.last().map(|r| r.cycle).unwrap_or(0);

    // Name every (pid, tid) track we are about to reference.
    let mut pids: BTreeSet<u64> = BTreeSet::new();
    let mut tids: BTreeSet<(u64, u64)> = BTreeSet::new();
    let track = |pids: &mut BTreeSet<u64>, tids: &mut BTreeSet<(u64, u64)>, sm: u32, tid: u64| {
        pids.insert(u64::from(sm));
        tids.insert((u64::from(sm), tid));
    };
    for r in &t.events {
        match r.ev {
            Event::WarpIssue { slot, .. }
            | Event::WarpRetire { slot }
            | Event::RbqEnqueue { slot, .. }
            | Event::RbqDequeue { slot, .. }
            | Event::MemIssue { slot, .. } => track(&mut pids, &mut tids, r.sm, u64::from(slot)),
            Event::IssueStall { sched, .. } | Event::SchedBlock { sched, .. } => {
                track(
                    &mut pids,
                    &mut tids,
                    r.sm,
                    SCHED_TID_BASE + u64::from(sched),
                );
            }
            Event::CtaLaunch { .. }
            | Event::CtaDrain { .. }
            | Event::Rollback { .. }
            | Event::CtaRelaunch { .. }
            | Event::SnapshotSave { .. }
            | Event::SnapshotRestore { .. } => track(&mut pids, &mut tids, r.sm, EVENTS_TID),
            Event::FaultStrike { sm, .. } | Event::FaultDetect { sm } => {
                track(&mut pids, &mut tids, sm, EVENTS_TID);
            }
            Event::RegionEnter { .. } | Event::RegionCommit { .. } | Event::RegionVerify { .. } => {
            }
        }
    }
    for (sm, rec) in &t.regions {
        track(&mut pids, &mut tids, *sm, u64::from(rec.slot));
    }
    for pid in &pids {
        let name = if *pid == u64::from(HARNESS_SM) {
            "harness".to_string()
        } else {
            format!("SM {pid}")
        };
        w.meta("process_name", *pid, None, &name);
    }
    for (pid, tid) in &tids {
        let name = if *tid == EVENTS_TID {
            "events".to_string()
        } else if *tid >= SCHED_TID_BASE {
            format!("sched {}", tid - SCHED_TID_BASE)
        } else {
            format!("warp {tid}")
        };
        w.meta("thread_name", *pid, Some(*tid), &name);
    }

    // Region slices come from the (eviction-proof) region records.
    for (sm, rec) in &t.regions {
        let close = if rec.is_closed() {
            rec.close
        } else {
            last_cycle
        };
        let args = format!(
            "\"pc\":{},\"committed\":{},\"closed\":{}",
            rec.pc,
            rec.committed,
            rec.is_closed()
        );
        w.slice(
            "region",
            "region",
            u64::from(*sm),
            u64::from(rec.slot),
            rec.enter,
            close.saturating_sub(rec.enter),
            &args,
        );
    }

    // Everything else comes from the retained event stream.
    let mut open_wait: HashMap<(u32, u32), u64> = HashMap::new();
    for r in &t.events {
        let pid = u64::from(r.sm);
        match r.ev {
            Event::WarpIssue { slot, pc } => w.slice(
                "issue",
                "issue",
                pid,
                u64::from(slot),
                r.cycle,
                1,
                &format!("\"pc\":{pc}"),
            ),
            Event::WarpRetire { slot } => {
                w.instant("retire", "issue", pid, u64::from(slot), r.cycle, "");
            }
            Event::IssueStall {
                sched,
                cause,
                cycles,
            } => w.slice(
                cause.name(),
                "stall",
                pid,
                SCHED_TID_BASE + u64::from(sched),
                r.cycle,
                cycles,
                "",
            ),
            Event::RbqEnqueue { slot, .. } => {
                open_wait.insert((r.sm, slot), r.cycle);
            }
            Event::RbqDequeue { slot, depth } => {
                if let Some(start) = open_wait.remove(&(r.sm, slot)) {
                    w.slice(
                        "verify-wait",
                        "rbq",
                        pid,
                        u64::from(slot),
                        start,
                        r.cycle.saturating_sub(start),
                        &format!("\"depth_after\":{depth}"),
                    );
                }
            }
            Event::SchedBlock { sched, until } => w.slice(
                "sched-block",
                "rbq",
                pid,
                SCHED_TID_BASE + u64::from(sched),
                r.cycle,
                until.saturating_sub(r.cycle),
                "",
            ),
            Event::MemIssue {
                slot,
                segments,
                finish,
            } => w.slice(
                "mem",
                "mem",
                pid,
                u64::from(slot),
                r.cycle,
                finish.saturating_sub(r.cycle),
                &format!("\"segments\":{segments}"),
            ),
            Event::CtaLaunch { cta, warps } => w.instant(
                "cta-launch",
                "cta",
                pid,
                EVENTS_TID,
                r.cycle,
                &format!("\"cta\":{cta},\"warps\":{warps}"),
            ),
            Event::CtaDrain { cta_slot } => w.instant(
                "cta-drain",
                "cta",
                pid,
                EVENTS_TID,
                r.cycle,
                &format!("\"cta_slot\":{cta_slot}"),
            ),
            Event::FaultStrike {
                sm,
                target,
                detected,
            } => w.instant(
                &format!("strike:{target}"),
                "fault",
                u64::from(sm),
                EVENTS_TID,
                r.cycle,
                &format!("\"detected\":{detected}"),
            ),
            Event::FaultDetect { sm } => {
                w.instant("detect", "fault", u64::from(sm), EVENTS_TID, r.cycle, "");
            }
            Event::Rollback { warps } => w.instant(
                "rollback",
                "fault",
                pid,
                EVENTS_TID,
                r.cycle,
                &format!("\"warps\":{warps}"),
            ),
            Event::CtaRelaunch { warps } => w.instant(
                "cta-relaunch",
                "fault",
                pid,
                EVENTS_TID,
                r.cycle,
                &format!("\"warps\":{warps}"),
            ),
            Event::SnapshotSave { dirty_chunks } => w.instant(
                "snapshot-save",
                "snapshot",
                pid,
                EVENTS_TID,
                r.cycle,
                &format!("\"dirty_chunks\":{dirty_chunks}"),
            ),
            Event::SnapshotRestore { cycle } => w.instant(
                "snapshot-restore",
                "snapshot",
                pid,
                EVENTS_TID,
                r.cycle,
                &format!("\"checkpoint_cycle\":{cycle}"),
            ),
            Event::RegionEnter { .. } | Event::RegionCommit { .. } | Event::RegionVerify { .. } => {
                // Rendered as region slices above.
            }
        }
    }
    // Close verify-wait intervals still open when the trace ended.
    let mut leftovers: Vec<((u32, u32), u64)> = open_wait.into_iter().collect();
    leftovers.sort_unstable();
    for ((sm, slot), start) in leftovers {
        w.slice(
            "verify-wait",
            "rbq",
            u64::from(sm),
            u64::from(slot),
            start,
            last_cycle.saturating_sub(start),
            "\"closed\":false",
        );
    }
    w.finish(t.dropped, t.regions_dropped)
}

/// Render every region record as one CSV row:
/// `sm,slot,pc,enter,close,latency,committed` (empty `close`/`latency`
/// for regions still open when the run ended).
pub fn region_csv(t: &SimTrace) -> String {
    let mut out = String::from("sm,slot,pc,enter,close,latency,committed\n");
    for (sm, r) in &t.regions {
        match r.latency() {
            Some(lat) => {
                let _ = writeln!(
                    out,
                    "{sm},{},{},{},{},{lat},{}",
                    r.slot, r.pc, r.enter, r.close, r.committed
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{sm},{},{},{},,,{}",
                    r.slot, r.pc, r.enter, r.committed
                );
            }
        }
    }
    out
}

fn hist_line(out: &mut String, label: &str, h: &crate::Histogram) {
    let _ = writeln!(
        out,
        "  {label:<18} count {:>10}  mean {:>8.2}  p50 {:>6}  p99 {:>6}  max {:>6}",
        h.count(),
        h.mean(),
        h.percentile(0.5),
        h.percentile(0.99),
        h.max()
    );
}

/// Render the per-(SM, scheduler) stall-attribution table plus histogram
/// summaries as human-readable text. The `ALL` row sums every scheduler;
/// its total equals the simulator's `StallStats::total()` (the trace
/// tests and the trace smoke assert this).
pub fn stall_table(t: &SimTrace) -> String {
    let mut out = String::from("stall attribution (cycles)\n");
    let _ = write!(out, "{:>4} {:>5}", "sm", "sched");
    for c in StallCause::ALL {
        let _ = write!(out, " {:>13}", c.name());
    }
    let _ = writeln!(out, " {:>13}", "total");
    for (sm, m) in &t.sm_stalls {
        for sched in 0..m.schedulers() {
            let row = m.row(sched);
            let _ = write!(out, "{sm:>4} {sched:>5}");
            for c in row {
                let _ = write!(out, " {c:>13}");
            }
            let _ = writeln!(out, " {:>13}", row.iter().sum::<u64>());
        }
    }
    let totals = t.stall_counts();
    let _ = write!(out, "{:>4} {:>5}", "ALL", "-");
    for c in totals {
        let _ = write!(out, " {c:>13}");
    }
    let _ = writeln!(out, " {:>13}", t.stall_total());
    out.push('\n');
    hist_line(&mut out, "rbq occupancy", &t.rbq_occupancy);
    hist_line(&mut out, "verify latency", &t.verify_latency);
    if t.dropped > 0 || t.regions_dropped > 0 {
        let _ = writeln!(
            out,
            "  (ring evicted {} events, {} region records dropped; aggregates above remain exact)",
            t.dropped, t.regions_dropped
        );
    }
    out
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self, depth: u32) -> Result<(), String> {
        if depth > 128 {
            return Err(self.err("nesting too deep"));
        }
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn object(&mut self, depth: u32) -> Result<(), String> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.value(depth + 1)?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value(depth + 1)?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        if self.peek() == Some(b'0') {
            self.i += 1;
        } else {
            self.digits()?;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

/// Validate that `s` is one syntactically well-formed JSON document
/// (hand-rolled — the workspace is dependency-free by design). Returns
/// the byte offset of the first problem on failure.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = JsonParser {
        b: s.as_bytes(),
        i: 0,
    };
    p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceBuffer;
    use crate::trace::SimTrace;

    fn sample_trace() -> SimTrace {
        let mut a = TraceBuffer::new(1 << 10);
        a.push(0, Event::CtaLaunch { cta: 0, warps: 2 });
        a.push(1, Event::WarpIssue { slot: 0, pc: 0 });
        a.push(
            1,
            Event::IssueStall {
                sched: 1,
                cause: StallCause::NoWarp,
                cycles: 1,
            },
        );
        a.push(
            2,
            Event::MemIssue {
                slot: 0,
                segments: 4,
                finish: 202,
            },
        );
        a.push(3, Event::RegionEnter { slot: 0, pc: 12 });
        a.push(3, Event::RbqEnqueue { slot: 0, depth: 1 });
        a.push(4, Event::WarpIssue { slot: 1, pc: 0 });
        a.push(40, Event::RbqDequeue { slot: 0, depth: 0 });
        a.push(40, Event::RegionVerify { slot: 0 });
        a.push(
            41,
            Event::SchedBlock {
                sched: 0,
                until: 60,
            },
        );
        a.push(45, Event::RegionEnter { slot: 1, pc: 12 });
        a.push(45, Event::RbqEnqueue { slot: 1, depth: 1 });
        a.push(50, Event::WarpRetire { slot: 0 });
        a.push(50, Event::CtaDrain { cta_slot: 0 });
        a.push(51, Event::Rollback { warps: 2 });
        a.push(52, Event::CtaRelaunch { warps: 2 });
        let mut h = TraceBuffer::new(64);
        h.push(
            20,
            Event::FaultStrike {
                sm: 0,
                target: "pipeline",
                detected: true,
            },
        );
        h.push(25, Event::FaultDetect { sm: 0 });
        SimTrace::merge(vec![(0, a)], Some(h))
    }

    #[test]
    fn chrome_json_is_valid_and_covers_tracks() {
        let json = chrome_trace_json(&sample_trace());
        validate_json(&json).expect("exported chrome trace must be valid JSON");
        for needle in [
            "\"process_name\"",
            "\"thread_name\"",
            "\"issue\"",
            "no_warp",
            "verify-wait",
            "strike:pipeline",
            "\"region\"",
            "sched-block",
            "cta-relaunch",
            "\"closed\":false", // slot-1 wait + region left open at trace end
        ] {
            assert!(json.contains(needle), "missing {needle} in chrome json");
        }
    }

    #[test]
    fn csv_has_one_row_per_region() {
        let t = sample_trace();
        let csv = region_csv(&t);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], "sm,slot,pc,enter,close,latency,committed");
        assert_eq!(lines.len(), 1 + t.regions.len());
        assert!(lines[1].starts_with("0,0,12,3,40,37,false"));
        // Slot 1's region never closed: empty close/latency fields.
        assert!(lines[2].starts_with("0,1,12,45,,,"));
    }

    #[test]
    fn stall_table_lists_causes_and_totals() {
        let t = sample_trace();
        let table = stall_table(&t);
        for c in StallCause::ALL {
            assert!(table.contains(c.name()));
        }
        assert!(table.contains("ALL"));
        assert!(table.contains("rbq occupancy"));
        assert!(table.contains("verify latency"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            "\"a\\u00e9\\n\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":false}",
            "  [ 1 , 2 ]  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("rejected {good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "\"unterminated",
            "\"bad\\escape\"",
            "{} {}",
            "[1] trailing",
            "{'single':1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted bad JSON {bad:?}");
        }
    }

    #[test]
    fn validator_depth_cap() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate_json(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        validate_json(&ok).unwrap();
    }
}
