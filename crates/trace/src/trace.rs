//! The merged whole-GPU trace: per-SM buffers folded into one
//! cycle-ordered stream plus run-wide aggregates, ready for export.

use crate::event::Event;
use crate::record::{Histogram, RegionRecord, StallMatrix, TraceBuffer};

/// Pseudo-SM id used for harness-level events (fault strikes and
/// detections emitted by the campaign driver rather than an SM).
pub const HARNESS_SM: u32 = u32::MAX;

/// One event in the merged stream, tagged with its emitting SM
/// ([`HARNESS_SM`] for harness events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmRecord {
    /// GPU cycle of the event.
    pub cycle: u64,
    /// Emitting SM (or [`HARNESS_SM`]).
    pub sm: u32,
    /// The event.
    pub ev: Event,
}

/// A whole-GPU trace assembled from every SM's [`TraceBuffer`] (plus an
/// optional harness buffer) by [`SimTrace::merge`].
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// All retained events, stably sorted by cycle (within a cycle, SM
    /// emission order is preserved).
    pub events: Vec<SmRecord>,
    /// Events evicted from the rings before merging (run-wide).
    pub dropped: u64,
    /// `(sm, per-scheduler stall matrix)` for every SM, in SM order.
    pub sm_stalls: Vec<(u32, StallMatrix)>,
    /// RBQ occupancy histogram merged across SMs (exact).
    pub rbq_occupancy: Histogram,
    /// Region-verification latency histogram merged across SMs (exact).
    pub verify_latency: Histogram,
    /// Every region boundary crossed, tagged with its SM.
    pub regions: Vec<(u32, RegionRecord)>,
    /// Region records dropped at the per-SM cap (run-wide).
    pub regions_dropped: u64,
}

impl SimTrace {
    /// Merge per-SM buffers (and an optional harness buffer) into one
    /// cycle-ordered trace. `sm_bufs` entries are `(sm_index, buffer)`.
    pub fn merge(sm_bufs: Vec<(u32, TraceBuffer)>, harness: Option<TraceBuffer>) -> SimTrace {
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut sm_stalls = Vec::with_capacity(sm_bufs.len());
        let mut rbq_occupancy = Histogram::new(64, 1);
        let mut verify_latency = Histogram::new(4096, 1);
        let mut regions = Vec::new();
        let mut regions_dropped = 0;
        for (sm, buf) in &sm_bufs {
            events.extend(buf.ring.iter().map(|r| SmRecord {
                cycle: r.cycle,
                sm: *sm,
                ev: r.ev,
            }));
            dropped += buf.dropped;
            sm_stalls.push((*sm, buf.stalls.clone()));
            rbq_occupancy.absorb(&buf.rbq_occupancy);
            verify_latency.absorb(&buf.verify_latency);
            regions.extend(buf.regions.iter().map(|r| (*sm, *r)));
            regions_dropped += buf.regions_dropped;
        }
        if let Some(buf) = &harness {
            events.extend(buf.ring.iter().map(|r| SmRecord {
                cycle: r.cycle,
                sm: HARNESS_SM,
                ev: r.ev,
            }));
            dropped += buf.dropped;
        }
        events.sort_by_key(|r| r.cycle);
        SimTrace {
            events,
            dropped,
            sm_stalls,
            rbq_occupancy,
            verify_latency,
            regions,
            regions_dropped,
        }
    }

    /// Per-cause stall cycles summed over every SM and scheduler, in
    /// [`crate::StallCause::ALL`] order. Exact for the whole run (stall
    /// attribution is aggregated before ring eviction), so this must
    /// equal the simulator's `StallStats` — the trace tests assert it.
    pub fn stall_counts(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for (_, m) in &self.sm_stalls {
            for (o, c) in out.iter_mut().zip(m.totals()) {
                *o += c;
            }
        }
        out
    }

    /// Total stall cycles across the GPU.
    pub fn stall_total(&self) -> u64 {
        self.stall_counts().iter().sum()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the merged stream is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The paper's WCDL claim, read off the retained timeline: does any
    /// warp issue while another warp *of the same SM* sits descheduled in
    /// the region boundary queue? True means verification latency was
    /// hidden behind warp-level parallelism at least once.
    pub fn deschedule_overlaps_issue(&self) -> bool {
        // Count of currently-descheduled warps per SM, walked in stream
        // order (the stream is cycle-sorted and order-preserving per SM).
        let mut open: std::collections::HashMap<u32, i64> = std::collections::HashMap::new();
        for r in &self.events {
            match r.ev {
                Event::RbqEnqueue { .. } => *open.entry(r.sm).or_insert(0) += 1,
                Event::RbqDequeue { .. } => *open.entry(r.sm).or_insert(0) -= 1,
                Event::WarpIssue { .. } if open.get(&r.sm).copied().unwrap_or(0) > 0 => {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// Retained events of one kind-matching predicate, in stream order.
    pub fn filtered<'a>(
        &'a self,
        pred: impl Fn(&Event) -> bool + 'a,
    ) -> impl Iterator<Item = &'a SmRecord> + 'a {
        self.events.iter().filter(move |r| pred(&r.ev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StallCause;

    fn buf_with(events: &[(u64, Event)]) -> TraceBuffer {
        let mut b = TraceBuffer::new(1 << 10);
        for (cycle, ev) in events {
            b.push(*cycle, *ev);
        }
        b
    }

    #[test]
    fn merge_orders_by_cycle_and_tags_sm() {
        let a = buf_with(&[
            (5, Event::WarpIssue { slot: 0, pc: 0 }),
            (9, Event::WarpRetire { slot: 0 }),
        ]);
        let b = buf_with(&[(3, Event::WarpIssue { slot: 1, pc: 4 })]);
        let h = buf_with(&[(
            7,
            Event::FaultStrike {
                sm: 0,
                target: "pipeline",
                detected: true,
            },
        )]);
        let t = SimTrace::merge(vec![(0, a), (1, b)], Some(h));
        let cycles: Vec<u64> = t.events.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![3, 5, 7, 9]);
        assert_eq!(t.events[0].sm, 1);
        assert_eq!(t.events[2].sm, HARNESS_SM);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn stall_counts_sum_across_sms() {
        let mut a = TraceBuffer::new(64);
        a.push(
            1,
            Event::IssueStall {
                sched: 0,
                cause: StallCause::NoWarp,
                cycles: 4,
            },
        );
        let mut b = TraceBuffer::new(64);
        b.push(
            2,
            Event::IssueStall {
                sched: 1,
                cause: StallCause::RbqWait,
                cycles: 6,
            },
        );
        let t = SimTrace::merge(vec![(0, a), (1, b)], None);
        let counts = t.stall_counts();
        assert_eq!(counts[StallCause::NoWarp.index()], 4);
        assert_eq!(counts[StallCause::RbqWait.index()], 6);
        assert_eq!(t.stall_total(), 10);
    }

    #[test]
    fn overlap_detection_is_per_sm() {
        // SM 0: warp 1 issues while warp 0 is in the RBQ → overlap.
        let a = buf_with(&[
            (10, Event::RbqEnqueue { slot: 0, depth: 1 }),
            (11, Event::WarpIssue { slot: 1, pc: 8 }),
            (15, Event::RbqDequeue { slot: 0, depth: 0 }),
        ]);
        let t = SimTrace::merge(vec![(0, a)], None);
        assert!(t.deschedule_overlaps_issue());

        // Issue on a *different* SM during the deschedule is no overlap.
        let a = buf_with(&[(10, Event::RbqEnqueue { slot: 0, depth: 1 })]);
        let b = buf_with(&[(11, Event::WarpIssue { slot: 1, pc: 8 })]);
        let t = SimTrace::merge(vec![(0, a), (1, b)], None);
        assert!(!t.deschedule_overlaps_issue());

        // Issue after the dequeue is no overlap either.
        let a = buf_with(&[
            (10, Event::RbqEnqueue { slot: 0, depth: 1 }),
            (15, Event::RbqDequeue { slot: 0, depth: 0 }),
            (16, Event::WarpIssue { slot: 0, pc: 8 }),
        ]);
        let t = SimTrace::merge(vec![(0, a)], None);
        assert!(!t.deschedule_overlaps_issue());
    }

    #[test]
    fn merge_carries_aggregates_and_regions() {
        let a = buf_with(&[
            (10, Event::RegionEnter { slot: 0, pc: 4 }),
            (10, Event::RbqEnqueue { slot: 0, depth: 1 }),
            (30, Event::RbqDequeue { slot: 0, depth: 0 }),
            (30, Event::RegionVerify { slot: 0 }),
        ]);
        let b = buf_with(&[
            (12, Event::RegionEnter { slot: 3, pc: 8 }),
            (12, Event::RegionCommit { slot: 3 }),
        ]);
        let t = SimTrace::merge(vec![(0, a), (4, b)], None);
        assert_eq!(t.regions.len(), 2);
        assert_eq!(t.regions[0].0, 0);
        assert_eq!(t.regions[1].0, 4);
        assert_eq!(t.verify_latency.count(), 1);
        assert_eq!(t.verify_latency.max(), 20);
        assert_eq!(t.rbq_occupancy.count(), 2);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.regions_dropped, 0);
        assert_eq!(
            t.filtered(|e| matches!(e, Event::RegionEnter { .. }))
                .count(),
            2
        );
    }
}
