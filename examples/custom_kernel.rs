//! Author a custom kernel with the builder, compile it with the Flame
//! pipeline, and inspect how the compiler formed idempotent regions.
//!
//! Run with `cargo run --release -p flame --example custom_kernel`.

use flame::compiler::pipeline::{build, BuildOptions};
use flame::prelude::*;
use flame::sim::isa::{Cmp, MemSpace, Special};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A kernel with a deliberate same-array WAR: out[i] = in-place prefix
    // walk over A.
    let mut b = KernelBuilder::new("custom");
    let tid = b.special(Special::TidX);
    let addr = b.imul(tid, 8);
    let v = b.ld_arr(MemSpace::Global, 0, addr, 0);
    let acc = b.mov(0i64);
    b.label("loop");
    let acc2 = b.iadd(acc, v);
    b.mov_to(acc, acc2);
    let p = b.setp(Cmp::Lt, acc, 1000i64);
    b.bra_if(p, true, "loop");
    // Same alias class as the load: the region formation must cut here.
    b.st_arr(MemSpace::Global, 0, addr, acc, 0);
    b.exit();
    let kernel = b.finish();

    println!("=== source kernel ===\n{}", kernel.disassemble());

    let compiled = build(&kernel, &BuildOptions::flame(63, 20))?;
    println!(
        "=== after the Flame pipeline ===\n{}",
        compiled.kernel.disassemble()
    );
    println!(
        "regions: {}   mean size: {:.1}   renames: {}   regs/thread: {}",
        compiled.stats.regions,
        compiled.stats.mean_region_size,
        compiled.stats.renamed,
        compiled.stats.regs_per_thread,
    );

    // And it still runs correctly under Flame on the simulator.
    use flame::core::experiment::WorkloadSpec;
    use std::sync::Arc;
    let spec = WorkloadSpec {
        name: "custom prefix walk",
        abbr: "CUSTOM",
        suite: "example",
        kernel,
        dims: LaunchDims::linear(32, 64),
        init: Arc::new(|m| {
            for i in 0..64u64 {
                m.write(i * 8, i % 7 + 1);
            }
        }),
        check: Arc::new(|m| (0..64u64).all(|i| m.read(i * 8) >= 1000)),
    };
    let r = run_scheme(&spec, Scheme::SensorRenaming, &ExperimentConfig::default())?;
    println!(
        "run under Flame: {} cycles, output {}",
        r.stats.cycles, r.output_ok
    );
    assert!(r.output_ok);
    Ok(())
}
