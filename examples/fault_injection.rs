//! End-to-end soft-error drill: inject particle strikes while a workload
//! runs under Flame, watch the sensors detect them and the idempotent
//! recovery roll every warp back — and verify the output is still
//! bit-correct.
//!
//! Run with `cargo run --release -p flame --example fault_injection`.

use flame::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExperimentConfig::default();
    let w = flame::workloads::by_abbr("SGEMM").expect("SGEMM is in the suite");
    println!("workload: {} under {}", w.abbr, Scheme::SensorRenaming);

    // Learn the fault-free runtime so the strikes land mid-execution.
    let clean = run_scheme(&w, Scheme::SensorRenaming, &cfg)?;
    println!("fault-free: {} cycles", clean.stats.cycles);

    // A burst of particle strikes on the pipeline logic (none masked by
    // ECC so every one matters).
    let mut gen = StrikeGenerator::new(2026, cfg.wcdl, cfg.gpu.num_sms).with_ecc_fraction(0.0);
    let strikes = gen.schedule(10, clean.stats.cycles * 3 / 4);
    println!("injecting {} strikes...", strikes.len());

    let r = run_with_faults(&w, Scheme::SensorRenaming, &cfg, &strikes)?;
    println!(
        "bit-flips landed on in-flight writes: {} / {}",
        r.corrupted,
        strikes.len()
    );
    println!(
        "sensor detections: {}   all-warp rollbacks: {}",
        r.detections, r.recoveries
    );
    println!(
        "warps rolled back: {}   cycles: {} ({:+.2}% vs fault-free)",
        r.run.stats.resilience.warps_rolled_back,
        r.run.stats.cycles,
        (r.run.stats.cycles as f64 / clean.stats.cycles as f64 - 1.0) * 100.0,
    );
    println!(
        "output after recovery: {}",
        if r.run.output_ok {
            "bit-correct ✓"
        } else {
            "CORRUPTED ✗"
        }
    );
    assert!(r.run.output_ok);
    Ok(())
}
