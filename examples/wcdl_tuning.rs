//! Explore the sensor-count ↔ WCDL ↔ overhead trade-off (the design
//! decision behind the paper's Figures 12 + 17 and its choice of 200
//! sensors / 20 cycles).
//!
//! Run with `cargo run --release -p flame --example wcdl_tuning -- SN`.

use flame::prelude::*;
use flame::sensors::sensors_for_wcdl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "SN".into());
    let w = flame::workloads::by_abbr(&abbr).expect("Table-I abbreviation");
    let gpu = GpuConfig::gtx480();
    println!(
        "{} on {}: sensors per SM -> WCDL -> Flame overhead\n",
        w.abbr, gpu.name
    );
    println!(
        "{:>10} {:>8} {:>12} {:>11}",
        "WCDL", "sensors", "area %", "overhead"
    );
    for wcdl in [10u32, 15, 20, 30, 40, 50] {
        let sensors = sensors_for_wcdl(gpu.sm_area_mm2, gpu.core_clock_mhz, wcdl);
        let mesh = SensorMesh::new(sensors, gpu.sm_area_mm2);
        let cfg = ExperimentConfig {
            gpu: gpu.clone(),
            wcdl,
            ..ExperimentConfig::default()
        };
        let t = normalized_time(&w, Scheme::SensorRenaming, &cfg)?;
        println!(
            "{:>10} {:>8} {:>11.4}% {:>+10.2}%",
            wcdl,
            sensors,
            mesh.area_overhead() * 100.0,
            (t - 1.0) * 100.0
        );
    }
    println!("\n(the paper picks 20 cycles / 200 sensors as the cost-effective knee)");
    Ok(())
}
