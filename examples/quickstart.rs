//! Quickstart: protect a Table-I workload with Flame and measure the
//! overhead and hardware cost.
//!
//! Run with `cargo run --release -p flame --example quickstart`.

use flame::core::report::hardware_cost;
use flame::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's default platform: GTX 480, GTO scheduler, 20-cycle WCDL.
    let cfg = ExperimentConfig::default();

    // Pick the paper's flagship workload: LU decomposition.
    let lud = flame::workloads::by_abbr("LUD").expect("LUD is in the suite");
    println!("workload: {} ({})", lud.name, lud.abbr);

    let baseline = run_scheme(&lud, Scheme::Baseline, &cfg)?;
    println!(
        "baseline:  {} cycles, output {}",
        baseline.stats.cycles,
        if baseline.output_ok {
            "correct"
        } else {
            "WRONG"
        }
    );

    let flame_run = run_scheme(&lud, Scheme::SensorRenaming, &cfg)?;
    println!(
        "Flame:     {} cycles, output {}, {} regions (mean {:.1} insts)",
        flame_run.stats.cycles,
        if flame_run.output_ok {
            "correct"
        } else {
            "WRONG"
        },
        flame_run.compile.regions,
        flame_run.compile.mean_region_size,
    );
    println!(
        "overhead:  {:+.2}%  |  warps verified through the RBQ: {}",
        (flame_run.stats.cycles as f64 / baseline.stats.cycles as f64 - 1.0) * 100.0,
        flame_run.stats.resilience.verifications,
    );

    // What the protection costs in hardware.
    let cost = hardware_cost(&cfg.gpu, cfg.wcdl);
    println!(
        "hardware:  {} sensors/SM ({:.4}% area), RBQ {} bits, RPT {} bits per scheduler",
        cost.sensors_per_sm,
        cost.sensor_area_overhead * 100.0,
        cost.rbq_bits_per_scheduler,
        cost.rpt_bits_per_scheduler,
    );
    Ok(())
}
