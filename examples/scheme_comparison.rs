//! Compare every resilience scheme on one workload (default LUD; pass a
//! Table-I abbreviation to choose another).
//!
//! Run with `cargo run --release -p flame --example scheme_comparison -- KNN`.

use flame::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "LUD".into());
    let w = flame::workloads::by_abbr(&abbr)
        .unwrap_or_else(|| panic!("unknown workload `{abbr}`; see `flame::workloads::all()`"));
    let cfg = ExperimentConfig::default();
    let base = run_scheme(&w, Scheme::Baseline, &cfg)?;
    println!("{} — baseline {} cycles\n", w.name, base.stats.cycles);
    println!(
        "{:<34} {:>12} {:>10} {:>9} {:>8}",
        "scheme", "cycles", "overhead", "regions", "extra"
    );
    for scheme in Scheme::paper_schemes() {
        let r = run_scheme(&w, scheme, &cfg)?;
        assert!(r.output_ok, "{scheme} produced wrong output");
        let extra = if r.compile.duplicated > 0 {
            format!("{} dup", r.compile.duplicated)
        } else if r.compile.checkpoints > 0 {
            format!("{} ckpt", r.compile.checkpoints)
        } else if r.compile.renamed > 0 {
            format!("{} ren", r.compile.renamed)
        } else {
            "-".into()
        };
        println!(
            "{:<34} {:>12} {:>9.2}% {:>9} {:>8}",
            scheme.name(),
            r.stats.cycles,
            (r.stats.cycles as f64 / base.stats.cycles as f64 - 1.0) * 100.0,
            r.compile.regions,
            extra,
        );
    }
    Ok(())
}
