#!/usr/bin/env bash
# Pre-merge gate: every change must pass this before merging.
#
#   ./scripts/verify.sh
#
# Runs the tier-1 check from ROADMAP.md (release build + full test
# suite) plus formatting and lint gates. Fails fast on the first broken
# step.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q under FLAME_SM_JOBS=1 (forced-serial engine)"
FLAME_SM_JOBS=1 cargo test -q

echo "==> cargo test -q under FLAME_SM_JOBS=4 (forced-parallel engine)"
FLAME_SM_JOBS=4 cargo test -q

echo "==> bench-smjobs (serial vs predecode vs SM-parallel -> BENCH_pr7.json)"
cargo run --release -q -p flame-bench --bin bench-smjobs

echo "==> fault-campaign smoke (golden report + journal resume)"
cargo run --release -q -p flame-bench --bin fault_campaign -- smoke

echo "==> fault-campaign fork-smoke (fork on/off histograms must match)"
cargo run --release -q -p flame-bench --bin fault_campaign -- fork-smoke

echo "==> fault-campaign crash-drill (SIGKILL/abort shard workers, resume, diff vs serial)"
cargo run --release -q -p flame-bench --bin fault_campaign -- --shards 4 --kill-after 2

echo "==> serve smoke (HTTP campaign vs serial diff, SIGKILL+restart resume, SIGTERM drain)"
cargo run --release -q -p flame-bench --bin serve -- smoke

echo "==> oracle fuzz smoke (FLAME_FUZZ_RUNS=${FLAME_FUZZ_RUNS:-200} differential seeds)"
cargo run --release -q -p flame-bench --bin fuzz_oracle

echo "==> oracle fuzz forced mismatch (reproducer line must surface)"
if out=$(cargo run --release -q -p flame-bench --bin fuzz_oracle -- --force-mismatch 2>&1); then
    echo "$out"
    echo "verify: forced mismatch was NOT detected" >&2
    exit 1
fi
if ! grep -q "FLAME_FUZZ_SEED=" <<<"$out"; then
    echo "$out"
    echo "verify: mismatch report lacks a FLAME_FUZZ_SEED= reproducer" >&2
    exit 1
fi

echo "==> trace smoke (capture + validate Chrome JSON + stall attribution)"
cargo run --release -q -p flame-bench --bin trace -- smoke

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all gates passed"
