#!/usr/bin/env bash
# Pre-merge gate: every change must pass this before merging.
#
#   ./scripts/verify.sh
#
# Runs the tier-1 check from ROADMAP.md (release build + full test
# suite) plus formatting and lint gates. Fails fast on the first broken
# step.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> fault-campaign smoke (pinned histogram + journal resume)"
cargo run --release -q -p flame-bench --bin fault_campaign -- smoke

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all gates passed"
